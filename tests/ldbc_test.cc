#include "ldbc/queries.h"

#include <gtest/gtest.h>

#include "query/engine.h"

namespace poseidon::ldbc {
namespace {

using query::QueryEngine;
using query::QueryResult;
using query::Value;

class LdbcTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto pool = pmem::Pool::CreateVolatile(1ull << 30);
    ASSERT_TRUE(pool.ok());
    pool_ = pool->release();
    auto store = storage::GraphStore::Create(pool_);
    ASSERT_TRUE(store.ok());
    store_ = store->release();
    indexes_ = new index::IndexManager(store_);
    mgr_ = new tx::TransactionManager(store_, indexes_);
    engine_ = new QueryEngine(store_, indexes_, 2);

    SnbConfig cfg;
    cfg.persons = 300;
    auto ds = GenerateSnb(mgr_, store_, cfg);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    ds_ = new SnbDataset(std::move(*ds));
    ASSERT_TRUE(CreateSnbIndexes(indexes_, ds_->schema,
                                 index::Placement::kHybrid)
                    .ok());
  }

  static void TearDownTestSuite() {
    delete engine_;
    delete mgr_;
    delete indexes_;
    delete ds_;
    delete store_;
    delete pool_;
  }

  Result<QueryResult> Run(const query::Plan& plan, std::vector<Value> params) {
    auto tx = mgr_->Begin();
    auto r = engine_->Execute(plan, tx.get(), params);
    if (r.ok()) EXPECT_TRUE(tx->Commit().ok());
    return r;
  }

  static pmem::Pool* pool_;
  static storage::GraphStore* store_;
  static index::IndexManager* indexes_;
  static tx::TransactionManager* mgr_;
  static QueryEngine* engine_;
  static SnbDataset* ds_;
};

pmem::Pool* LdbcTest::pool_ = nullptr;
storage::GraphStore* LdbcTest::store_ = nullptr;
index::IndexManager* LdbcTest::indexes_ = nullptr;
tx::TransactionManager* LdbcTest::mgr_ = nullptr;
QueryEngine* LdbcTest::engine_ = nullptr;
SnbDataset* LdbcTest::ds_ = nullptr;

TEST_F(LdbcTest, DatasetHasExpectedShape) {
  EXPECT_EQ(ds_->persons.size(), 300u);
  EXPECT_EQ(ds_->forums.size(), 300u);
  EXPECT_EQ(ds_->posts.size(), 900u);
  EXPECT_EQ(ds_->comments.size(), 1800u);
  EXPECT_GT(ds_->total_relationships, 5000u);
  EXPECT_EQ(ds_->total_nodes, store_->nodes().size());
}

TEST_F(LdbcTest, GenerationIsDeterministic) {
  // A second store generated with the same seed must match entity counts
  // and logical-id ranges exactly.
  auto pool = pmem::Pool::CreateVolatile(1ull << 30);
  ASSERT_TRUE(pool.ok());
  auto store = storage::GraphStore::Create(pool->get());
  ASSERT_TRUE(store.ok());
  tx::TransactionManager mgr(store->get(), nullptr);
  SnbConfig cfg;
  cfg.persons = 300;
  auto ds = GenerateSnb(&mgr, store->get(), cfg);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->total_nodes, ds_->total_nodes);
  EXPECT_EQ(ds->total_relationships, ds_->total_relationships);
  EXPECT_EQ(ds->max_message_id, ds_->max_message_id);
}

TEST_F(LdbcTest, KnowsDegreesArePowerLawish) {
  // The zipf-skewed knows generator must produce a heavy tail: the maximum
  // out-degree should be several times the average.
  auto tx = mgr_->Begin();
  uint64_t total = 0, max_degree = 0;
  for (storage::RecordId p : ds_->persons) {
    uint64_t degree = 0;
    ASSERT_TRUE(tx->ForEachOutgoing(p, [&](auto, const auto& rel) {
                      if (rel.label == ds_->schema.knows) ++degree;
                      return true;
                    }).ok());
    total += degree;
    max_degree = std::max(max_degree, degree);
  }
  double avg = static_cast<double>(total) / ds_->persons.size();
  EXPECT_GT(avg, 2.0);
  EXPECT_GT(static_cast<double>(max_degree), 2.0 * avg);
  ASSERT_TRUE(tx->Commit().ok());
}

TEST_F(LdbcTest, EveryMessageHasCreatorAndRoot) {
  auto tx = mgr_->Begin();
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    storage::RecordId msg =
        ds_->comments[rng.Uniform(ds_->comments.size())];
    // Exactly one hasCreator edge.
    int creators = 0;
    ASSERT_TRUE(tx->ForEachOutgoing(msg, [&](auto, const auto& rel) {
                      if (rel.label == ds_->schema.has_creator) ++creators;
                      return true;
                    }).ok());
    EXPECT_EQ(creators, 1);
    // replyOf chain terminates at a Post.
    storage::RecordId cur = msg;
    for (int hop = 0; hop < 64; ++hop) {
      auto n = tx->GetNode(cur);
      ASSERT_TRUE(n.ok());
      if (n->rec.label == ds_->schema.post) break;
      storage::RecordId next = storage::kNullId;
      ASSERT_TRUE(tx->ForEachOutgoing(cur, [&](auto, const auto& rel) {
                        if (rel.label != ds_->schema.reply_of) return true;
                        next = rel.dst;
                        return false;
                      }).ok());
      ASSERT_NE(next, storage::kNullId) << "dangling replyOf chain";
      cur = next;
    }
  }
  ASSERT_TRUE(tx->Commit().ok());
}

TEST_F(LdbcTest, AllShortReadsReturnResults) {
  for (bool use_index : {false, true}) {
    auto queries = BuildShortReads(ds_->schema, use_index);
    ASSERT_EQ(queries.size(), 12u);
    Rng rng(7);
    for (const auto& q : queries) {
      // Try a few parameters; at least one should produce rows (some
      // persons have no comments etc.).
      uint64_t total = 0;
      for (int i = 0; i < 10; ++i) {
        auto params = DrawShortReadParams(*ds_, q.name, &rng);
        auto r = Run(q.plan, params);
        ASSERT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
        total += r->rows.size();
      }
      EXPECT_GT(total, 0u) << q.name << " (use_index=" << use_index << ")";
    }
  }
}

TEST_F(LdbcTest, IndexedAndScannedShortReadsAgree) {
  auto scan_queries = BuildShortReads(ds_->schema, false);
  auto index_queries = BuildShortReads(ds_->schema, true);
  Rng rng(11);
  for (size_t i = 0; i < scan_queries.size(); ++i) {
    auto params = DrawShortReadParams(*ds_, scan_queries[i].name, &rng);
    auto a = Run(scan_queries[i].plan, params);
    auto b = Run(index_queries[i].plan, params);
    ASSERT_TRUE(a.ok() && b.ok()) << scan_queries[i].name;
    ASSERT_EQ(a->rows.size(), b->rows.size()) << scan_queries[i].name;
    for (size_t r = 0; r < a->rows.size(); ++r) {
      EXPECT_EQ(a->rows[r].size(), b->rows[r].size());
      for (size_t c = 0; c < a->rows[r].size(); ++c) {
        EXPECT_TRUE(a->rows[r][c] == b->rows[r][c])
            << scan_queries[i].name << " row " << r << " col " << c;
      }
    }
  }
}

TEST_F(LdbcTest, Is1ReturnsFullProfile) {
  auto queries = BuildShortReads(ds_->schema, true);
  auto r = Run(queries[0].plan, {Value::Int(1)});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0].size(), 8u);
  // City id is in the 20M range.
  EXPECT_GE(r->rows[0][5].AsInt(), 20'000'000);
}

TEST_F(LdbcTest, Is2RespectsLimitAndOrder) {
  auto queries = BuildShortReads(ds_->schema, true);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    auto params = DrawShortReadParams(*ds_, "IS2-post", &rng);
    auto r = Run(queries[1].plan, params);
    ASSERT_TRUE(r.ok());
    ASSERT_LE(r->rows.size(), 10u);
    for (size_t k = 1; k < r->rows.size(); ++k) {
      EXPECT_GE(r->rows[k - 1][2].AsInt(), r->rows[k][2].AsInt())
          << "creationDate must be descending";
    }
  }
}

TEST_F(LdbcTest, AllUpdatesExecuteAndCommit) {
  for (bool use_index : {true, false}) {
    auto queries = BuildUpdates(ds_->schema, &store_->dict(), use_index);
    ASSERT_TRUE(queries.ok());
    Rng rng(23);
    uint64_t rels_before = store_->relationships().size();
    for (const auto& q : *queries) {
      auto params = DrawUpdateParams(ds_, q.name, &rng);
      auto tx = mgr_->Begin();
      auto r = engine_->Execute(q.plan, tx.get(), params);
      ASSERT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
      ASSERT_TRUE(tx->Commit().ok()) << q.name;
    }
    EXPECT_GT(store_->relationships().size(), rels_before);
  }
}

TEST_F(LdbcTest, Iu8CreatesBidirectionalFriendship) {
  auto queries = BuildUpdates(ds_->schema, &store_->dict(), true);
  ASSERT_TRUE(queries.ok());
  // Find IU8.
  const NamedQuery* iu8 = nullptr;
  for (const auto& q : *queries) {
    if (q.name == "IU8") iu8 = &q;
  }
  ASSERT_NE(iu8, nullptr);
  // Create two fresh persons, then befriend them.
  int64_t p1 = ++ds_->max_person_id;
  int64_t p2 = ++ds_->max_person_id;
  storage::RecordId r1, r2;
  {
    auto tx = mgr_->Begin();
    r1 = *tx->CreateNode(ds_->schema.person,
                         {{ds_->schema.id, storage::PVal::Int(p1)}});
    r2 = *tx->CreateNode(ds_->schema.person,
                         {{ds_->schema.id, storage::PVal::Int(p2)}});
    ASSERT_TRUE(tx->Commit().ok());
  }
  {
    auto tx = mgr_->Begin();
    auto r = engine_->Execute(iu8->plan, tx.get(),
                              {Value::Int(p1), Value::Int(p2),
                               Value::Int(123456)});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto tx = mgr_->Begin();
  int out1 = 0, out2 = 0;
  ASSERT_TRUE(tx->ForEachOutgoing(r1, [&](auto, const auto& rel) {
                    if (rel.label == ds_->schema.knows) ++out1;
                    return true;
                  }).ok());
  ASSERT_TRUE(tx->ForEachOutgoing(r2, [&](auto, const auto& rel) {
                    if (rel.label == ds_->schema.knows) ++out2;
                    return true;
                  }).ok());
  EXPECT_EQ(out1, 1);
  EXPECT_EQ(out2, 1);
}

}  // namespace
}  // namespace poseidon::ldbc
