#include "index/index_manager.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "tx/transaction.h"

namespace poseidon::index {
namespace {

using storage::DictCode;
using storage::PVal;
using storage::RecordId;

pmem::PoolOptions FastOptions() {
  pmem::PoolOptions o;
  o.capacity = 256ull << 20;
  o.has_latency_override = true;
  o.latency_override = pmem::LatencyModel::Dram();
  return o;
}

class IndexManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pool = pmem::Pool::CreateVolatile(256ull << 20);
    ASSERT_TRUE(pool.ok());
    pool_ = std::move(*pool);
    auto store = storage::GraphStore::Create(pool_.get());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    indexes_ = std::make_unique<IndexManager>(store_.get());
    mgr_ = std::make_unique<tx::TransactionManager>(store_.get(),
                                                    indexes_.get());
    person_ = *store_->Code("Person");
    id_ = *store_->Code("id");
  }

  RecordId AddPerson(int64_t id_value) {
    auto tx = mgr_->Begin();
    auto id = tx->CreateNode(person_, {{id_, PVal::Int(id_value)}});
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(tx->Commit().ok());
    return *id;
  }

  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<storage::GraphStore> store_;
  std::unique_ptr<IndexManager> indexes_;
  std::unique_ptr<tx::TransactionManager> mgr_;
  DictCode person_, id_;
};

TEST_F(IndexManagerTest, BulkLoadsExistingData) {
  std::vector<RecordId> ids;
  for (int i = 0; i < 200; ++i) ids.push_back(AddPerson(i));
  auto tree = indexes_->CreateIndex(person_, id_, Placement::kHybrid);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ((*tree)->size(), 200u);
  auto hit = (*tree)->Lookup(BTreeKey{42, ids[42]});
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, ids[42]);
}

TEST_F(IndexManagerTest, DuplicateIndexRejected) {
  ASSERT_TRUE(indexes_->CreateIndex(person_, id_, Placement::kHybrid).ok());
  auto again = indexes_->CreateIndex(person_, id_, Placement::kVolatile);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(IndexManagerTest, FindByLabelAndKey) {
  ASSERT_TRUE(indexes_->CreateIndex(person_, id_, Placement::kHybrid).ok());
  EXPECT_NE(indexes_->Find(person_, id_), nullptr);
  EXPECT_EQ(indexes_->Find(person_, id_ + 100), nullptr);
  EXPECT_EQ(indexes_->Find(person_ + 100, id_), nullptr);
}

TEST_F(IndexManagerTest, CommitHooksMaintainIndex) {
  ASSERT_TRUE(indexes_->CreateIndex(person_, id_, Placement::kHybrid).ok());
  BPlusTree* tree = indexes_->Find(person_, id_);
  RecordId node = AddPerson(7);
  EXPECT_TRUE(tree->Lookup(BTreeKey{7, node}).ok());

  // Update moves the entry.
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->SetNodeProperty(node, id_, PVal::Int(70)).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  EXPECT_FALSE(tree->Lookup(BTreeKey{7, node}).ok());
  EXPECT_TRUE(tree->Lookup(BTreeKey{70, node}).ok());

  // Delete removes it.
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->DeleteNode(node).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  EXPECT_FALSE(tree->Lookup(BTreeKey{70, node}).ok());
}

TEST_F(IndexManagerTest, AbortedTransactionLeavesIndexUntouched) {
  ASSERT_TRUE(indexes_->CreateIndex(person_, id_, Placement::kHybrid).ok());
  BPlusTree* tree = indexes_->Find(person_, id_);
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->CreateNode(person_, {{id_, PVal::Int(123)}}).ok());
    tx->Abort();
  }
  EXPECT_EQ(tree->size(), 0u);
}

TEST_F(IndexManagerTest, UnindexedLabelIgnoredByHooks) {
  ASSERT_TRUE(indexes_->CreateIndex(person_, id_, Placement::kHybrid).ok());
  BPlusTree* tree = indexes_->Find(person_, id_);
  DictCode city = *store_->Code("City");
  auto tx = mgr_->Begin();
  ASSERT_TRUE(tx->CreateNode(city, {{id_, PVal::Int(5)}}).ok());
  ASSERT_TRUE(tx->Commit().ok());
  EXPECT_EQ(tree->size(), 0u);
}

TEST(IndexManagerPersistenceTest, DirectoryRecoversHybridIndexes) {
  std::string path = testing::TempDir() + "/idxmgr_reopen.pmem";
  std::filesystem::remove(path);
  DictCode person, id;
  RecordId node;
  {
    auto pool = pmem::Pool::Create(path, FastOptions());
    ASSERT_TRUE(pool.ok());
    auto store = storage::GraphStore::Create(pool->get());
    ASSERT_TRUE(store.ok());
    IndexManager indexes(store->get());
    tx::TransactionManager mgr(store->get(), &indexes);
    person = *(*store)->Code("Person");
    id = *(*store)->Code("id");
    auto tx = mgr.Begin();
    node = *tx->CreateNode(person, {{id, PVal::Int(11)}});
    ASSERT_TRUE(tx->Commit().ok());
    ASSERT_TRUE(indexes.CreateIndex(person, id, Placement::kHybrid).ok());
  }
  {
    auto pool = pmem::Pool::Open(path, FastOptions());
    ASSERT_TRUE(pool.ok());
    auto store = storage::GraphStore::Open(pool->get());
    ASSERT_TRUE(store.ok());
    IndexManager indexes(store->get());
    ASSERT_TRUE(indexes.LoadPersistent().ok());
    BPlusTree* tree = indexes.Find(person, id);
    ASSERT_NE(tree, nullptr);
    auto hit = tree->Lookup(BTreeKey{11, node});
    ASSERT_TRUE(hit.ok());
    EXPECT_EQ(*hit, node);
    EXPECT_EQ(tree->placement(), Placement::kHybrid);
  }
  std::filesystem::remove(path);
}

TEST(IndexManagerPersistenceTest, VolatileIndexesNotInDirectory) {
  std::string path = testing::TempDir() + "/idxmgr_volatile.pmem";
  std::filesystem::remove(path);
  DictCode person, id;
  {
    auto pool = pmem::Pool::Create(path, FastOptions());
    auto store = storage::GraphStore::Create(pool->get());
    IndexManager indexes(store->get());
    person = *(*store)->Code("Person");
    id = *(*store)->Code("id");
    ASSERT_TRUE(indexes.CreateIndex(person, id, Placement::kVolatile).ok());
  }
  {
    auto pool = pmem::Pool::Open(path, FastOptions());
    auto store = storage::GraphStore::Open(pool->get());
    IndexManager indexes(store->get());
    ASSERT_TRUE(indexes.LoadPersistent().ok());
    EXPECT_EQ(indexes.Find(person, id), nullptr)
        << "volatile indexes must be re-created from primary data";
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace poseidon::index
