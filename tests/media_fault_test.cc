// End-to-end media-fault tolerance (DESIGN.md "Online scrubbing & media
// faults"): randomized bit flips and torn lines are injected into the
// durable image, surfaced by SimulateCrash(), and must all be *detected*
// by the scrubber; re-derivable structures repair in place, unrepairable
// slots are quarantined so queries degrade to Status::Corruption — never
// garbage values, never crashes.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/graph_db.h"
#include "pmem/fault_injector.h"
#include "pmem/psan.h"

namespace poseidon::core {
namespace {

using query::Expr;
using query::Plan;
using query::PlanBuilder;
using query::Value;
using storage::PVal;
using storage::RecordId;

// DRAM-backed pool with a crash shadow: checksums are on (crash-shadow
// pools maintain the sidecar), media faults land in the shadow and are
// surfaced by SimulateCrash(), and there is no PMem latency emulation or
// query cache to slow the campaign down.
GraphDbOptions ShadowOptions() {
  GraphDbOptions o;
  o.path = "";
  o.capacity = 96ull << 20;
  o.crash_shadow = true;
  o.query_threads = 2;
  return o;
}

class MediaFaultTest : public ::testing::Test {
 protected:
  void Create() {
    auto db = GraphDb::Create(ShadowOptions());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    pool_ = db_->pool();
    ASSERT_TRUE(pool_->checksums_enabled());
    ASSERT_NE(pool_->fault_injector(), nullptr);
    ASSERT_NE(db_->scrubber(), nullptr);
  }

  // True when any byte of `line` (64 B line number) is quarantined.
  bool LineQuarantined(uint64_t line) const {
    const char* p = pool_->ToPtr<char>(line * pmem::kCacheLineSize);
    return pool_->IsQuarantinedRange(p, pmem::kCacheLineSize);
  }

  std::unique_ptr<GraphDb> db_;
  pmem::Pool* pool_ = nullptr;
};

TEST_F(MediaFaultTest, CleanPoolScrubsClean) {
  Create();
  auto person = *db_->Code("Person");
  auto key = *db_->Code("k");
  auto tx = db_->Begin();
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(tx->CreateNode(person, {{key, PVal::Int(i)}}).ok());
  }
  ASSERT_TRUE(tx->Commit().ok());

  EXPECT_EQ(db_->scrubber()->ScrubOnce(), 0u);
  auto health = db_->Health();
  EXPECT_TRUE(health.checksums_enabled);
  EXPECT_GT(health.scrub_lines_verified, 0u);
  EXPECT_EQ(health.scrub_mismatches, 0u);
  EXPECT_EQ(health.quarantined_lines, 0u);
  EXPECT_EQ(health.psan_violations, 0u);
}

// The acceptance campaign: >=100 randomized single-bit flips across the
// whole sealed data area. Every flipped line must end either verified
// clean (repaired / adopted) or quarantined — an undetected corruption
// would still verify as kMismatch without being quarantined. Reads after
// the scrub return a correct value or Status::Corruption, never garbage.
TEST_F(MediaFaultTest, RandomizedBitFlipCampaignDetectsEverything) {
  Create();
  constexpr int kNodes = 2000;
  auto person = *db_->Code("Person");
  auto id_key = *db_->Code("id");
  auto v_key = *db_->Code("v");
  auto knows = *db_->Code("knows");

  std::vector<RecordId> ids;
  {
    auto tx = db_->Begin();
    for (int i = 0; i < kNodes; ++i) {
      auto id = tx->CreateNode(
          person, {{id_key, PVal::Int(i)}, {v_key, PVal::Int(i * 3)}});
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    for (int i = 0; i + 1 < kNodes; i += 7) {
      ASSERT_TRUE(tx->CreateRelationship(ids[i], ids[i + 1], knows, {}).ok());
    }
    ASSERT_TRUE(tx->Commit().ok());
  }
  ASSERT_TRUE(db_->CreateIndex("Person", "id").ok());

  // Pin transaction: begun before the updates below so their pre-update
  // versions stay retained — the scrubber's resurrect path rolls corrupt
  // updated records back to them.
  auto pin = db_->Begin();
  {
    auto tx = db_->Begin();
    for (int i = 0; i < kNodes; i += 3) {
      ASSERT_TRUE(
          tx->SetNodeProperty(ids[i], v_key, PVal::Int(i * 3 + 1)).ok());
    }
    ASSERT_TRUE(tx->Commit().ok());
  }

  pool_->SealPending();
  auto lines =
      pool_->fault_injector()->InjectRandomMediaFaults(pool_, 120, 0xC0FFEE);
  ASSERT_GE(lines.size(), 100u);
  pool_->SimulateCrash();

  uint64_t mismatches = db_->scrubber()->ScrubOnce();
  EXPECT_GE(mismatches, 1u);

  // 100% detection: no injected line may remain mismatched-but-live.
  for (uint64_t line : lines) {
    auto v = pool_->VerifyLine(line);
    bool detected =
        v == pmem::Pool::LineVerify::kClean || LineQuarantined(line);
    EXPECT_TRUE(detected) << "line " << line << " verdict "
                          << static_cast<int>(v);
  }
  // A second pass finds nothing new (quarantined lines are skipped).
  EXPECT_EQ(db_->scrubber()->ScrubOnce(), 0u);

  auto health = db_->Health();
  EXPECT_GE(health.scrub_mismatches, mismatches);
  EXPECT_EQ(health.scrub_repaired + health.scrub_adopted +
                health.scrub_quarantined + health.scrub_resealed,
            health.scrub_mismatches);

  // Reads degrade loudly, never silently: each property read returns the
  // committed value (updated records may resurrect to their pre-update
  // version) or Status::Corruption.
  int corrupt_reads = 0;
  {
    auto tx = db_->Begin();
    for (int i = 0; i < kNodes; ++i) {
      auto v = tx->GetNodeProperty(ids[i], v_key);
      if (v.ok()) {
        int64_t got = v->AsInt();
        if (i % 3 == 0) {
          EXPECT_TRUE(got == i * 3 || got == i * 3 + 1) << "node " << i;
        } else {
          EXPECT_EQ(got, i * 3) << "node " << i;
        }
      } else {
        EXPECT_EQ(v.status().code(), StatusCode::kCorruption)
            << v.status().ToString();
        ++corrupt_reads;
      }
    }
  }
  // Scans skip tombstoned slots instead of failing the whole query.
  Plan count = PlanBuilder().NodeScan(person).Count().Build();
  auto r = db_->Execute(count);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->rows[0][0].AsInt(), 0);
  EXPECT_LE(r->rows[0][0].AsInt(), kNodes);
  EXPECT_GE(r->rows[0][0].AsInt() + corrupt_reads, kNodes - 64);

  // Index probes for intact records still work after leaf repair.
  {
    auto tx = db_->Begin();
    for (int i = 1; i < kNodes; ++i) {
      auto v = tx->GetNodeProperty(ids[i], id_key);
      if (!v.ok() || v->AsInt() != i) continue;  // record was lost
      Plan probe = PlanBuilder()
                       .IndexScan(person, id_key, Expr::Param(0))
                       .Count()
                       .Build();
      auto pr = db_->Execute(probe, jit::ExecutionMode::kInterpret,
                             {Value::Int(i)});
      ASSERT_TRUE(pr.ok()) << pr.status().ToString();
      EXPECT_EQ(pr->rows[0][0].AsInt(), 1);
      break;
    }
  }
  EXPECT_EQ(pmem::PsanTotalViolations(), 0u);
}

// A whole torn (garbage) line over an updated record resurrects from its
// retained version chain — read-repair, not quarantine. NodeRecord is
// exactly one cache line, so the tear hits a single slot.
TEST_F(MediaFaultTest, TornNodeRecordResurrectsFromVersionChain) {
  Create();
  auto person = *db_->Code("Person");
  auto v_key = *db_->Code("v");
  std::vector<RecordId> ids;
  {
    auto tx = db_->Begin();
    for (int i = 0; i < 4; ++i) {
      auto id = tx->CreateNode(person, {{v_key, PVal::Int(7)}});
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto pin = db_->Begin();  // retains the pre-update versions below
  {
    auto tx = db_->Begin();
    for (RecordId id : ids) {
      ASSERT_TRUE(tx->SetNodeProperty(id, v_key, PVal::Int(8)).ok());
    }
    ASSERT_TRUE(tx->Commit().ok());
  }
  pool_->SealPending();
  pool_->fault_injector()->InjectTornLine(
      pool_, pool_->ToOffset(db_->store()->nodes().At(ids[1])));
  pool_->SimulateCrash();

  EXPECT_GE(db_->scrubber()->ScrubOnce(), 1u);
  EXPECT_EQ(pool_->quarantined_lines(), 0u);
  auto tx = db_->Begin();
  auto v = tx->GetNodeProperty(ids[1], v_key);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_TRUE(v->AsInt() == 7 || v->AsInt() == 8);
  EXPECT_EQ(pmem::PsanTotalViolations(), 0u);
}

// A flip in a *free* slot's line is harmless: the content is dead bytes,
// so the line is adopted (resealed as-is), not quarantined.
TEST_F(MediaFaultTest, FreeSlotLinesAreAdopted) {
  Create();
  auto person = *db_->Code("Person");
  auto tx = db_->Begin();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(tx->CreateNode(person, {}).ok());
  }
  ASSERT_TRUE(tx->Commit().ok());
  pool_->SealPending();

  // Slot 100 of chunk 0 exists (512 slots/chunk) but is unoccupied.
  auto& nodes = db_->store()->nodes();
  ASSERT_FALSE(nodes.IsOccupied(100));
  pool_->fault_injector()->InjectBitFlip(pool_, pool_->ToOffset(nodes.At(100)),
                                         5);
  pool_->SimulateCrash();

  EXPECT_GE(db_->scrubber()->ScrubOnce(), 1u);
  EXPECT_EQ(pool_->quarantined_lines(), 0u);
  EXPECT_GE(pool_->scrub_stats().adopted.load(), 1u);
  EXPECT_EQ(pmem::PsanTotalViolations(), 0u);
}

// The first header line of a chunk carries re-derivable fields (next
// pointer, first id): corruption there is repaired from the DRAM chunk
// directory and the table keeps growing and reading correctly.
TEST_F(MediaFaultTest, ChunkHeaderLineIsRepaired) {
  Create();
  auto person = *db_->Code("Person");
  auto v_key = *db_->Code("v");
  std::vector<RecordId> ids;
  {
    auto tx = db_->Begin();
    for (int i = 0; i < 600; ++i) {  // > 512: forces a second chunk
      auto id = tx->CreateNode(person, {{v_key, PVal::Int(i)}});
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    ASSERT_TRUE(tx->Commit().ok());
  }
  pool_->SealPending();

  // Locate chunk 0's first header line (the one holding next/first_id).
  auto& nodes = db_->store()->nodes();
  std::vector<uint64_t> sealed;
  pool_->CollectSealedLines(&sealed);
  uint64_t header_line = 0;
  for (uint64_t line : sealed) {
    auto owner = nodes.OwnerOfLine(line * pmem::kCacheLineSize);
    using Kind = storage::NodeTable::LineKind;
    if (owner.kind == Kind::kHeader && owner.chunk == 0) {
      header_line = line;
      break;  // sealed lines are sorted: first hit is the first line
    }
  }
  ASSERT_NE(header_line, 0u);
  // Byte 0 is the low byte of the chunk's `next` offset.
  pool_->fault_injector()->InjectBitFlip(
      pool_, header_line * pmem::kCacheLineSize, 3);
  pool_->SimulateCrash();

  EXPECT_GE(db_->scrubber()->ScrubOnce(), 1u);
  EXPECT_EQ(pool_->quarantined_lines(), 0u);
  // The inter-chunk link works: reads cross into chunk 1 and inserts land.
  auto tx = db_->Begin();
  auto v = tx->GetNodeProperty(ids[599], v_key);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->AsInt(), 599);
  ASSERT_TRUE(tx->CreateNode(person, {{v_key, PVal::Int(600)}}).ok());
  ASSERT_TRUE(tx->Commit().ok());
  EXPECT_EQ(pmem::PsanTotalViolations(), 0u);
}

// Dictionary lines: the hash table rebuilds, the meta block restores from
// its DRAM mirror, and codes whose string bytes are lost poison only
// themselves — Decode answers correctly or with Corruption, and new
// strings still intern.
TEST_F(MediaFaultTest, DictionaryLinesDegradeGracefully) {
  Create();
  std::vector<std::pair<storage::DictCode, std::string>> interned;
  for (int i = 0; i < 64; ++i) {
    std::string s = "dict-string-" + std::to_string(i);
    auto code = db_->Code(s);
    ASSERT_TRUE(code.ok());
    interned.emplace_back(*code, s);
  }
  pool_->SealPending();

  std::vector<uint64_t> sealed;
  pool_->CollectSealedLines(&sealed);
  const auto& dict = db_->store()->dict();
  int injected = 0;
  for (uint64_t line : sealed) {
    if (!dict.OwnsLine(line * pmem::kCacheLineSize)) continue;
    pool_->fault_injector()->InjectBitFlip(
        pool_, line * pmem::kCacheLineSize + (injected % 64),
        injected % 8);
    if (++injected == 8) break;
  }
  ASSERT_GT(injected, 0);
  pool_->SimulateCrash();

  EXPECT_GE(db_->scrubber()->ScrubOnce(), 1u);
  for (const auto& [code, s] : interned) {
    auto d = db_->Decode(code);
    if (d.ok()) {
      EXPECT_EQ(*d, s);
    } else {
      EXPECT_EQ(d.status().code(), StatusCode::kCorruption)
          << d.status().ToString();
    }
  }
  auto fresh = db_->Code("interned-after-the-fault");
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(pmem::PsanTotalViolations(), 0u);
}

// A commit-boundary seal racing a concurrent write to the same line must
// never leave a stale checksum in the durable image: at every instant the
// durable slot is either 0 (unsealed, not judged) or the CRC of the durable
// content. A stale seal is invisible in-process (the line stays in the
// pending set, which reseals on touch) but a crash wipes that set, and
// recovery would then quarantine a perfectly good committed line.
TEST_F(MediaFaultTest, SealRaceNeverLeavesStaleDurableChecksum) {
  Create();
  // A dedicated line nothing else reads: only the seal protocol is under
  // test, so the writer can scribble freely.
  auto off = pool_->Allocate(pmem::kCacheLineSize);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  uint64_t line = *off / pmem::kCacheLineSize;
  char* p = pool_->ToPtr<char>(*off);
  std::memset(p, 0xA5, pmem::kCacheLineSize);  // psan: test scribble
  pool_->Flush(p, pmem::kCacheLineSize);
  pool_->SealPending();
  ASSERT_EQ(pool_->VerifyLine(line), pmem::Pool::LineVerify::kClean);
  for (int round = 0; round < 20000; ++round) {
    std::thread sealer([&] { pool_->SealPending(); });
    p[63] = static_cast<char>(round);  // psan: raw store is the test subject
    pool_->Flush(p + 63, 1);
    sealer.join();
    // "Crash now": the durable image must verify unsealed or clean. A
    // mismatch means the sealer published a CRC computed before this
    // round's flush — the stale-seal race.
    auto v = pool_->VerifyLine(line);
    ASSERT_NE(v, pmem::Pool::LineVerify::kMismatch) << "round " << round;
  }
  EXPECT_EQ(pmem::PsanTotalViolations(), 0u);
}

// SimulateCrash() must leave the scrubber in a deterministic state for
// crash-point sweeps: epoch bumped (the background thread restarts its
// cursor), quarantine cleared, and a fresh full pass finds nothing.
TEST_F(MediaFaultTest, SimulateCrashResetsScrubberState) {
  Create();
  auto person = *db_->Code("Person");
  {
    auto tx = db_->Begin();
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(tx->CreateNode(person, {}).ok());
    }
    ASSERT_TRUE(tx->Commit().ok());
  }
  pool_->SealPending();
  auto* scrubber = db_->scrubber();
  scrubber->SetRate(64);
  scrubber->Start();
  EXPECT_TRUE(scrubber->running());

  std::vector<uint64_t> sealed;
  pool_->CollectSealedLines(&sealed);
  ASSERT_FALSE(sealed.empty());
  pool_->QuarantineLine(sealed.front());
  EXPECT_EQ(pool_->quarantined_lines(), 1u);

  uint64_t epoch = pool_->scrub_epoch();
  pool_->SimulateCrash();
  EXPECT_EQ(pool_->scrub_epoch(), epoch + 1);
  EXPECT_EQ(pool_->quarantined_lines(), 0u);
  EXPECT_EQ(scrubber->ScrubOnce(), 0u);
  scrubber->Stop();
  EXPECT_FALSE(scrubber->running());
  EXPECT_EQ(pmem::PsanTotalViolations(), 0u);
}

}  // namespace
}  // namespace poseidon::core
