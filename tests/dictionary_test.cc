#include "storage/dictionary.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

namespace poseidon::storage {
namespace {

pmem::PoolOptions FastOptions() {
  pmem::PoolOptions o;
  o.capacity = 128ull << 20;
  o.has_latency_override = true;
  o.latency_override = pmem::LatencyModel::Dram();
  return o;
}

class DictionaryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pool = pmem::Pool::CreateVolatile(128ull << 20);
    ASSERT_TRUE(pool.ok());
    pool_ = std::move(*pool);
    auto dict = Dictionary::Create(pool_.get());
    ASSERT_TRUE(dict.ok());
    dict_ = std::move(*dict);
  }

  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<Dictionary> dict_;
};

TEST_F(DictionaryTest, EncodeDecodeRoundTrip) {
  auto code = dict_->Encode("Person");
  ASSERT_TRUE(code.ok());
  EXPECT_NE(*code, kInvalidCode);
  auto s = dict_->Decode(*code);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "Person");
}

TEST_F(DictionaryTest, EncodeIsIdempotent) {
  auto a = dict_->Encode("knows");
  auto b = dict_->Encode("knows");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(dict_->size(), 1u);
}

TEST_F(DictionaryTest, DistinctStringsGetDistinctCodes) {
  auto a = dict_->Encode("Post");
  auto b = dict_->Encode("Comment");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
}

TEST_F(DictionaryTest, LookupDoesNotInsert) {
  EXPECT_FALSE(dict_->Lookup("absent").ok());
  EXPECT_EQ(dict_->size(), 0u);
  ASSERT_TRUE(dict_->Encode("present").ok());
  EXPECT_TRUE(dict_->Lookup("present").ok());
}

TEST_F(DictionaryTest, DecodeRejectsBadCodes) {
  EXPECT_FALSE(dict_->Decode(kInvalidCode).ok());
  EXPECT_FALSE(dict_->Decode(999).ok());
}

TEST_F(DictionaryTest, EmptyStringIsAValidKey) {
  auto code = dict_->Encode("");
  ASSERT_TRUE(code.ok());
  auto s = dict_->Decode(*code);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "");
}

TEST_F(DictionaryTest, SurvivesBucketAndArenaGrowth) {
  // Enough strings to force several bucket-array doublings and arena blocks.
  constexpr int kN = 20000;
  std::vector<DictCode> codes(kN);
  for (int i = 0; i < kN; ++i) {
    auto code = dict_->Encode("string_value_number_" + std::to_string(i));
    ASSERT_TRUE(code.ok()) << code.status().ToString();
    codes[i] = *code;
  }
  EXPECT_EQ(dict_->size(), static_cast<uint64_t>(kN));
  for (int i = 0; i < kN; i += 97) {
    auto s = dict_->Decode(codes[i]);
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(*s, "string_value_number_" + std::to_string(i));
  }
}

TEST_F(DictionaryTest, ConcurrentEncodersAgree) {
  constexpr int kThreads = 4;
  constexpr int kWords = 500;
  std::vector<std::vector<DictCode>> results(kThreads,
                                             std::vector<DictCode>(kWords));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kWords; ++i) {
        auto code = dict_->Encode("w" + std::to_string(i));
        ASSERT_TRUE(code.ok());
        results[t][i] = *code;
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t], results[0]);
  }
  EXPECT_EQ(dict_->size(), static_cast<uint64_t>(kWords));
}

TEST(DictionaryPersistenceTest, SurvivesReopen) {
  std::string path = testing::TempDir() + "/dict_reopen.pmem";
  std::filesystem::remove(path);
  pmem::Offset meta;
  DictCode person, name;
  {
    auto pool = pmem::Pool::Create(path, FastOptions());
    ASSERT_TRUE(pool.ok());
    auto dict = Dictionary::Create(pool->get());
    ASSERT_TRUE(dict.ok());
    meta = (*dict)->meta_offset();
    person = *(*dict)->Encode("Person");
    name = *(*dict)->Encode("name");
    for (int i = 0; i < 5000; ++i) {
      ASSERT_TRUE((*dict)->Encode("filler_" + std::to_string(i)).ok());
    }
  }
  {
    auto pool = pmem::Pool::Open(path, FastOptions());
    ASSERT_TRUE(pool.ok());
    auto dict = Dictionary::Open(pool->get(), meta);
    ASSERT_TRUE(dict.ok());
    EXPECT_EQ(*(*dict)->Decode(person), "Person");
    EXPECT_EQ(*(*dict)->Decode(name), "name");
    EXPECT_EQ(*(*dict)->Lookup("Person"), person);
    EXPECT_EQ(*(*dict)->Encode("filler_123"),
              *(*dict)->Lookup("filler_123"));
    EXPECT_EQ((*dict)->size(), 5002u);
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace poseidon::storage
