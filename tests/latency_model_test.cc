// LatencyModel tests: env-knob parsing, the Dram()/EmulatedPmem() presets,
// and the zero-latency passthrough guarantees that keep DRAM-mode tests
// fast. The spin-wait *durations* are calibrated elsewhere (bench_pmem_micro
// E1); here we only assert behaviour that is timing-independent or
// one-sided (an upper bound of "essentially free").

#include "pmem/latency_model.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>

namespace poseidon::pmem {
namespace {

class LatencyModelTest : public ::testing::Test {
 protected:
  void SetUp() override { ClearEnv(); }
  void TearDown() override { ClearEnv(); }

  static void ClearEnv() {
    ::unsetenv("POSEIDON_PMEM_READ_NS");
    ::unsetenv("POSEIDON_PMEM_FLUSH_NS");
    ::unsetenv("POSEIDON_PMEM_DRAIN_NS");
  }
};

TEST_F(LatencyModelTest, DramPresetIsDisabled) {
  LatencyModel m = LatencyModel::Dram();
  EXPECT_EQ(m.read_block_ns, 0u);
  EXPECT_EQ(m.flush_line_ns, 0u);
  EXPECT_EQ(m.drain_ns, 0u);
  EXPECT_FALSE(m.enabled());
}

TEST_F(LatencyModelTest, EmulatedPmemDefaultsMatchPublishedNumbers) {
  LatencyModel m = LatencyModel::EmulatedPmem();
  // The documented Optane approximations (see latency_model.h header).
  EXPECT_EQ(m.read_block_ns, 200u);
  EXPECT_EQ(m.flush_line_ns, 90u);
  EXPECT_EQ(m.drain_ns, 100u);
  EXPECT_TRUE(m.enabled());
}

TEST_F(LatencyModelTest, EnvKnobsOverrideEachComponent) {
  ::setenv("POSEIDON_PMEM_READ_NS", "350", 1);
  ::setenv("POSEIDON_PMEM_FLUSH_NS", "0", 1);
  ::setenv("POSEIDON_PMEM_DRAIN_NS", "75", 1);
  LatencyModel m = LatencyModel::EmulatedPmem();
  EXPECT_EQ(m.read_block_ns, 350u);
  EXPECT_EQ(m.flush_line_ns, 0u);  // explicit zero disables just that knob
  EXPECT_EQ(m.drain_ns, 75u);
  EXPECT_TRUE(m.enabled());  // drain + read still inject latency
}

TEST_F(LatencyModelTest, KnobsAreReadFreshOnEveryCall) {
  ::setenv("POSEIDON_PMEM_READ_NS", "111", 1);
  EXPECT_EQ(LatencyModel::EmulatedPmem().read_block_ns, 111u);
  ::setenv("POSEIDON_PMEM_READ_NS", "222", 1);
  EXPECT_EQ(LatencyModel::EmulatedPmem().read_block_ns, 222u);
}

TEST_F(LatencyModelTest, GarbageAndEmptyEnvFallBackToDefaults) {
  ::setenv("POSEIDON_PMEM_READ_NS", "not-a-number", 1);
  ::setenv("POSEIDON_PMEM_FLUSH_NS", "", 1);
  LatencyModel m = LatencyModel::EmulatedPmem();
  EXPECT_EQ(m.read_block_ns, 200u);
  EXPECT_EQ(m.flush_line_ns, 90u);
}

TEST_F(LatencyModelTest, ZeroLatencyCallsArePassthrough) {
  // Dram() models must be safe to call on every hot-path hook and cost
  // nothing observable: no spins, no thread-local churn that matters.
  LatencyModel m = LatencyModel::Dram();
  char buf[4096];
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 100000; ++i) {
    m.OnRead(buf, sizeof(buf));
    m.OnPrefetch(buf, sizeof(buf));
    m.OnFlush(64);
    m.OnDrain();
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  // 400k no-op hooks in well under a second even on a loaded CI machine;
  // a missing early-out would spin for (100000 * 64 * 90ns) = ~9 minutes.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);
}

TEST_F(LatencyModelTest, ZeroLengthAccessesAreIgnored) {
  LatencyModel m;
  m.read_block_ns = 1'000'000'000;  // 1s per block: a miss would hang
  m.flush_line_ns = 1'000'000'000;
  auto start = std::chrono::steady_clock::now();
  char buf[8];
  m.OnRead(buf, 0);
  m.OnPrefetch(buf, 0);
  m.OnFlush(0);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            100);
}

TEST_F(LatencyModelTest, PrefetchMakesLaterReadCheaper) {
  // A block announced via OnPrefetch long enough ago is served with only
  // the residual wait. With a tiny read latency the residual is ~zero, so
  // this is timing-safe: we assert the prefetched read does NOT pay the
  // full per-block cost, using a deliberately huge cost to separate the
  // two outcomes by orders of magnitude.
  LatencyModel m;
  m.read_block_ns = 50'000'000;  // 50 ms per block — unmissable if paid
  alignas(256) static char buf[256];
  m.OnPrefetch(buf, 1);
  // Let the modeled fill complete.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
  }
  auto start = std::chrono::steady_clock::now();
  m.OnRead(buf, 1);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            40)
      << "prefetched block paid the full read latency";
}

}  // namespace
}  // namespace poseidon::pmem
