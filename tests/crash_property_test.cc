// Property-based crash testing: with the pool's crash shadow enabled, every
// store that was not explicitly flushed vanishes at SimulateCrash() — the
// strongest software approximation of power failure. The property under
// test: after a crash at ANY point, recovery yields exactly the committed
// prefix of the workload (failure atomicity + durability, DG4/C4).

#include <gtest/gtest.h>

#include <filesystem>

#include "tx/transaction.h"
#include "util/random.h"

namespace poseidon::tx {
namespace {

using storage::DictCode;
using storage::PVal;
using storage::RecordId;

struct Committed {
  RecordId node;
  int64_t value;
};

/// Runs `committed_txs` committed updates plus one in-flight transaction,
/// crashes, recovers, and verifies exactly the committed state survived.
void RunCrashScenario(uint64_t seed, int committed_txs) {
  pmem::PoolOptions options;
  options.capacity = 256ull << 20;
  options.crash_shadow = true;
  options.has_latency_override = true;
  options.latency_override = pmem::LatencyModel::Dram();
  std::string path = testing::TempDir() + "/crash_prop_" +
                     std::to_string(seed) + ".pmem";
  std::filesystem::remove(path);
  auto pool = pmem::Pool::Create(path, options);
  ASSERT_TRUE(pool.ok());

  DictCode label, key;
  std::vector<Committed> ground_truth;
  Rng rng(seed);
  {
    auto store = storage::GraphStore::Create(pool->get());
    ASSERT_TRUE(store.ok());
    auto mgr = std::make_unique<TransactionManager>(store->get(), nullptr);
    label = *(*store)->Code("Node");
    key = *(*store)->Code("v");

    for (int i = 0; i < committed_txs; ++i) {
      auto tx = mgr->Begin();
      if (ground_truth.empty() || rng.Uniform(2) == 0) {
        int64_t v = static_cast<int64_t>(rng.Uniform(1'000'000));
        auto id = tx->CreateNode(label, {{key, PVal::Int(v)}});
        ASSERT_TRUE(id.ok());
        ASSERT_TRUE(tx->Commit().ok());
        ground_truth.push_back({*id, v});
      } else {
        auto& target = ground_truth[rng.Uniform(ground_truth.size())];
        int64_t v = static_cast<int64_t>(rng.Uniform(1'000'000));
        ASSERT_TRUE(tx->SetNodeProperty(target.node, key, PVal::Int(v)).ok());
        ASSERT_TRUE(tx->Commit().ok());
        target.value = v;
      }
    }

    // One in-flight transaction of each kind at the crash point.
    auto tx = mgr->Begin();
    ASSERT_TRUE(tx->CreateNode(label, {{key, PVal::Int(-1)}}).ok());
    if (!ground_truth.empty()) {
      ASSERT_TRUE(tx->SetNodeProperty(ground_truth[0].node, key,
                                      PVal::Int(-2))
                      .ok());
    }
    (void)tx.release();  // crash with the transaction open
    // `store`/`mgr` destruction only frees DRAM state; nothing flushes.
  }

  // --- Power failure --------------------------------------------------------
  (*pool)->SimulateCrash();
  (*pool)->redo_log()->Recover();

  // --- Recovery: reopen all structures from persistent state ---------------
  auto store = storage::GraphStore::Open(pool->get());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  TransactionManager mgr(store->get(), nullptr);
  ASSERT_TRUE(mgr.RecoverInFlight().ok());

  EXPECT_EQ((*store)->nodes().size(), ground_truth.size())
      << "seed " << seed << ": exactly the committed nodes must survive";
  auto tx = mgr.Begin();
  for (const Committed& c : ground_truth) {
    auto v = tx->GetNodeProperty(c.node, key);
    ASSERT_TRUE(v.ok()) << "seed " << seed << " node " << c.node;
    EXPECT_EQ(v->AsInt(), c.value) << "seed " << seed << " node " << c.node;
  }
  std::filesystem::remove(path);
}

class CrashPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashPropertyTest, CommittedPrefixSurvivesCrash) {
  RunCrashScenario(GetParam(), 40);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(CrashPropertyTest, EmptyDatabaseCrashIsHarmless) {
  RunCrashScenario(99, 0);
}

TEST(CrashPropertyTest, RepeatedCrashesAreIdempotent) {
  // Crash, recover, do more work, crash again: each recovery must see the
  // then-committed state.
  pmem::PoolOptions options;
  options.capacity = 256ull << 20;
  options.crash_shadow = true;
  options.has_latency_override = true;
  options.latency_override = pmem::LatencyModel::Dram();
  std::string path = testing::TempDir() + "/crash_repeat.pmem";
  std::filesystem::remove(path);
  auto pool = pmem::Pool::Create(path, options);
  ASSERT_TRUE(pool.ok());

  DictCode label, key;
  uint64_t expected = 0;
  {
    auto store = storage::GraphStore::Create(pool->get());
    ASSERT_TRUE(store.ok());
    label = *(*store)->Code("N");
    key = *(*store)->Code("v");
    TransactionManager mgr(store->get(), nullptr);
    for (int i = 0; i < 10; ++i) {
      auto tx = mgr.Begin();
      ASSERT_TRUE(tx->CreateNode(label, {{key, PVal::Int(i)}}).ok());
      ASSERT_TRUE(tx->Commit().ok());
    }
    expected = 10;
  }
  for (int round = 0; round < 3; ++round) {
    (*pool)->SimulateCrash();
    (*pool)->redo_log()->Recover();
    auto store = storage::GraphStore::Open(pool->get());
    ASSERT_TRUE(store.ok());
    TransactionManager mgr(store->get(), nullptr);
    ASSERT_TRUE(mgr.RecoverInFlight().ok());
    ASSERT_EQ((*store)->nodes().size(), expected) << "round " << round;
    // More committed work between crashes.
    for (int i = 0; i < 5; ++i) {
      auto tx = mgr.Begin();
      ASSERT_TRUE(tx->CreateNode(label, {{key, PVal::Int(round * 100 + i)}})
                      .ok());
      ASSERT_TRUE(tx->Commit().ok());
    }
    expected += 5;
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace poseidon::tx
