#include "storage/property_store.h"

#include <gtest/gtest.h>

namespace poseidon::storage {
namespace {

class PropertyStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pool = pmem::Pool::CreateVolatile(64ull << 20);
    ASSERT_TRUE(pool.ok());
    pool_ = std::move(*pool);
    auto table = PropertyTable::Create(pool_.get());
    ASSERT_TRUE(table.ok());
    table_ = std::move(*table);
    store_ = std::make_unique<PropertyStore>(table_.get());
  }

  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<PropertyTable> table_;
  std::unique_ptr<PropertyStore> store_;
};

TEST_F(PropertyStoreTest, EmptyChainIsNull) {
  auto head = store_->CreateChain(1, {});
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(*head, kNullId);
  EXPECT_TRUE(store_->Get(kNullId, 5).is_null());
}

TEST_F(PropertyStoreTest, RoundTripAllValueTypes) {
  std::vector<Property> props = {
      {1, PVal::Int(-42)},
      {2, PVal::Double(3.25)},
      {3, PVal::String(77)},
      {4, PVal::Bool(true)},
  };
  auto head = store_->CreateChain(9, props);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(store_->Get(*head, 1).AsInt(), -42);
  EXPECT_DOUBLE_EQ(store_->Get(*head, 2).AsDouble(), 3.25);
  EXPECT_EQ(store_->Get(*head, 3).AsString(), 77u);
  EXPECT_TRUE(store_->Get(*head, 4).AsBool());
  EXPECT_TRUE(store_->Get(*head, 99).is_null());
}

TEST_F(PropertyStoreTest, ReadChainPreservesOrderAndCount) {
  std::vector<Property> props;
  for (uint32_t i = 1; i <= 10; ++i) {
    props.push_back({i, PVal::Int(static_cast<int64_t>(i) * 100)});
  }
  auto head = store_->CreateChain(3, props);
  ASSERT_TRUE(head.ok());
  std::vector<Property> read;
  store_->ReadChain(*head, &read);
  ASSERT_EQ(read.size(), props.size());
  EXPECT_EQ(read, props);
}

TEST_F(PropertyStoreTest, ChainsUseMinimalRecords) {
  // 3 entries per 64 B record: 7 properties -> 3 records.
  std::vector<Property> props;
  for (uint32_t i = 1; i <= 7; ++i) props.push_back({i, PVal::Int(i)});
  auto head = store_->CreateChain(3, props);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(table_->size(), 3u);
}

TEST_F(PropertyStoreTest, FreeChainRecyclesRecords) {
  std::vector<Property> props;
  for (uint32_t i = 1; i <= 9; ++i) props.push_back({i, PVal::Int(i)});
  auto head = store_->CreateChain(3, props);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(table_->size(), 3u);
  ASSERT_TRUE(store_->FreeChain(*head).ok());
  EXPECT_EQ(table_->size(), 0u);
}

TEST_F(PropertyStoreTest, SingleEntryChain) {
  auto head = store_->CreateChain(1, {{5, PVal::String(8)}});
  ASSERT_TRUE(head.ok());
  std::vector<Property> read;
  store_->ReadChain(*head, &read);
  ASSERT_EQ(read.size(), 1u);
  EXPECT_EQ(read[0].key, 5u);
}

}  // namespace
}  // namespace poseidon::storage
