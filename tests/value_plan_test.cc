#include <gtest/gtest.h>

#include "pmem/latency_model.h"
#include "util/spin_timer.h"
#include "query/plan.h"
#include "query/value.h"

namespace poseidon::query {
namespace {

// --- Value ----------------------------------------------------------------

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(-5).AsInt(), -5);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String(9).AsString(), 9u);
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Node(77).AsRecordId(), 77u);
  EXPECT_EQ(Value::Rel(78).AsRecordId(), 78u);
}

TEST(ValueTest, PValRoundTrip) {
  storage::PVal cases[] = {
      storage::PVal::Null(),      storage::PVal::Int(-100),
      storage::PVal::Double(1.5), storage::PVal::String(3),
      storage::PVal::Bool(true),
  };
  for (const auto& p : cases) {
    storage::PVal back = Value::FromPVal(p).ToPVal();
    EXPECT_EQ(back, p);
  }
}

TEST(ValueTest, FromRawReconstructs) {
  Value v = Value::Double(3.75);
  Value r = Value::FromRaw(static_cast<uint8_t>(v.kind()), v.raw());
  EXPECT_TRUE(v == r);
  EXPECT_DOUBLE_EQ(r.AsDouble(), 3.75);
}

TEST(ValueTest, NumericCompareCrossesIntAndDouble) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Double(1.5)), 0);
  EXPECT_GT(Value::Double(3.1).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, NegativeIntsOrder) {
  EXPECT_LT(Value::Int(-10).Compare(Value::Int(-1)), 0);
  EXPECT_LT(Value::Int(-1).Compare(Value::Int(0)), 0);
}

TEST(ValueTest, ToStringWithoutDictionary) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Int(3).ToString(), "3");
  EXPECT_EQ(Value::Node(5).ToString(), "node(5)");
  EXPECT_EQ(Value::String(2).ToString(), "str#2");
}

// --- Plan / signature -------------------------------------------------------

TEST(PlanTest, CountOpsIncludesBuildSide) {
  Plan build = PlanBuilder().NodeScan(1).Project({Expr::Column(0)}).Build();
  Plan p = PlanBuilder()
               .NodeScan(2)
               .HashJoin(std::move(build), 0, 0)
               .Count()
               .Build();
  EXPECT_EQ(p.CountOps(), 5);
}

TEST(PlanTest, SourceIsDeepestInput) {
  Plan p = PlanBuilder()
               .NodeScan(3)
               .FilterProperty(0, 1, CmpOp::kEq, Expr::Param(0))
               .Count()
               .Build();
  ASSERT_NE(p.Source(), nullptr);
  EXPECT_EQ(p.Source()->kind, OpKind::kNodeScan);
  EXPECT_EQ(p.Source()->label, 3u);
}

TEST(PlanTest, SignatureDistinguishesStructure) {
  auto scan_count = [] {
    return PlanBuilder().NodeScan(1).Count().Build();
  };
  Plan filter_plan = PlanBuilder()
                         .NodeScan(1)
                         .FilterProperty(0, 2, CmpOp::kLt,
                                         Expr::Literal(Value::Int(5)))
                         .Count()
                         .Build();
  EXPECT_EQ(scan_count().Signature(), scan_count().Signature());
  EXPECT_NE(scan_count().Signature(), filter_plan.Signature());

  // Different literal -> different signature; different param INDEX ->
  // different; same param index -> same.
  Plan lit_a = PlanBuilder()
                   .NodeScan(1)
                   .FilterProperty(0, 2, CmpOp::kEq,
                                   Expr::Literal(Value::Int(1)))
                   .Build();
  Plan lit_b = PlanBuilder()
                   .NodeScan(1)
                   .FilterProperty(0, 2, CmpOp::kEq,
                                   Expr::Literal(Value::Int(2)))
                   .Build();
  EXPECT_NE(lit_a.Signature(), lit_b.Signature());
  Plan par_a = PlanBuilder()
                   .NodeScan(1)
                   .FilterProperty(0, 2, CmpOp::kEq, Expr::Param(0))
                   .Build();
  Plan par_b = PlanBuilder()
                   .NodeScan(1)
                   .FilterProperty(0, 2, CmpOp::kEq, Expr::Param(1))
                   .Build();
  EXPECT_NE(par_a.Signature(), par_b.Signature());
}

TEST(PlanTest, SignatureCoversJoinBuildSide) {
  auto mk = [](storage::DictCode build_label) {
    Plan build = PlanBuilder().NodeScan(build_label).Build();
    return PlanBuilder().NodeScan(1).HashJoin(std::move(build), 0, 0).Build();
  };
  EXPECT_NE(mk(5).Signature(), mk(6).Signature());
}

TEST(PlanTest, DirectionAndLabelsInSignature) {
  auto mk = [](Direction d, storage::DictCode rel) {
    return PlanBuilder().NodeScan(1).Expand(0, d, rel).Build();
  };
  EXPECT_NE(mk(Direction::kOut, 4).Signature(),
            mk(Direction::kIn, 4).Signature());
  EXPECT_NE(mk(Direction::kOut, 4).Signature(),
            mk(Direction::kOut, 5).Signature());
}

TEST(PlanTest, ToStringAnnotatesPipelineSources) {
  Plan p = PlanBuilder()
               .IndexRangeScan(7, 8, Expr::Literal(Value::Int(1)),
                               Expr::Literal(Value::Int(9)))
               .Count()
               .Build();
  // Without an annotation, EXPLAIN output is unchanged.
  std::string plain = p.ToString();
  EXPECT_NE(plain.find("IndexRangeScan"), std::string::npos);
  EXPECT_EQ(plain.find("parallel="), std::string::npos);

  ExplainAnnotation ann;
  ann.threads = 4;
  ann.morsel = 2048;
  ann.batch = true;
  std::string annotated = p.ToString(nullptr, &ann);
  EXPECT_NE(annotated.find(
                "[parallel=4, morsel=2048, batch=on, rts=eager skip=0 defer=0]"),
            std::string::npos);

  ann.batch = false;
  EXPECT_NE(p.ToString(nullptr, &ann).find("batch=off"), std::string::npos);

  // Only the pipeline source gets the suffix — exactly one occurrence, on
  // the scan line, and join build sides are excluded.
  Plan build = PlanBuilder().NodeScan(2).Build();
  Plan join = PlanBuilder()
                  .NodeScan(1)
                  .HashJoin(std::move(build), 0, 0)
                  .Count()
                  .Build();
  ann.batch = true;
  std::string js = join.ToString(nullptr, &ann);
  size_t first = js.find("[parallel=");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(js.find("[parallel=", first + 1), std::string::npos);
}

// --- Latency model ----------------------------------------------------------

TEST(LatencyModelTest, DramModelIsDisabled) {
  auto m = pmem::LatencyModel::Dram();
  EXPECT_FALSE(m.enabled());
}

TEST(LatencyModelTest, EmulatedPmemChargesBlockReads) {
  pmem::LatencyModel m;
  m.read_block_ns = 200000;  // exaggerated for measurement: 200 us / block
  alignas(256) static char region[4096];

  // First touch of a block pays; an immediately repeated touch of the SAME
  // block is buffer-hot (C3 write-combining buffer model).
  StopWatch w;
  m.OnRead(region, 64);
  double first = w.ElapsedUs();
  w.Reset();
  m.OnRead(region + 64, 64);  // same 256 B block
  double repeat = w.ElapsedUs();
  EXPECT_GT(first, 150.0);
  EXPECT_LT(repeat, 50.0);

  // Touching a different block pays again.
  w.Reset();
  m.OnRead(region + 1024, 64);
  EXPECT_GT(w.ElapsedUs(), 150.0);
}

TEST(LatencyModelTest, MultiBlockReadChargesPerBlock) {
  pmem::LatencyModel m;
  m.read_block_ns = 100000;  // 100 us per block
  alignas(256) static char region[4096];
  m.OnRead(region + 2048, 1);  // move the buffer away
  StopWatch w;
  m.OnRead(region, 512);  // two fresh blocks
  double t = w.ElapsedUs();
  EXPECT_GT(t, 180.0);
  // Upper bound guards against gross overcharging (per-byte would be
  // ~51 ms); generous because a preemption mid-measurement inflates the
  // wall clock by whole scheduler quanta on a loaded single-core host.
  EXPECT_LT(t, 20000.0);
}

}  // namespace
}  // namespace poseidon::query
