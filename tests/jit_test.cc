#include "jit/jit_query_engine.h"

#include <gtest/gtest.h>

#include "ldbc/queries.h"

namespace poseidon::jit {
namespace {

using ldbc::SnbConfig;
using ldbc::SnbDataset;
using query::CmpOp;
using query::Direction;
using query::Expr;
using query::Plan;
using query::PlanBuilder;
using query::QueryResult;
using query::Value;

bool SameRows(const QueryResult& a, const QueryResult& b,
              bool order_sensitive = true) {
  if (a.rows.size() != b.rows.size()) return false;
  auto key = [](const query::Tuple& t) {
    std::string k;
    for (const auto& v : t) {
      k += std::to_string(static_cast<int>(v.kind())) + ":" +
           std::to_string(v.raw()) + "|";
    }
    return k;
  };
  std::vector<std::string> ka, kb;
  for (const auto& t : a.rows) ka.push_back(key(t));
  for (const auto& t : b.rows) kb.push_back(key(t));
  if (!order_sensitive) {
    std::sort(ka.begin(), ka.end());
    std::sort(kb.begin(), kb.end());
  }
  return ka == kb;
}

class JitTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto pool = pmem::Pool::CreateVolatile(1ull << 30);
    ASSERT_TRUE(pool.ok());
    pool_ = pool->release();
    auto store = storage::GraphStore::Create(pool_);
    ASSERT_TRUE(store.ok());
    store_ = store->release();
    indexes_ = new index::IndexManager(store_);
    mgr_ = new tx::TransactionManager(store_, indexes_);
    auto cache = QueryCache::Create(pool_);
    ASSERT_TRUE(cache.ok());
    cache_ = cache->release();
    auto engine = JitQueryEngine::Create(store_, indexes_, 2, cache_);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = engine->release();

    SnbConfig cfg;
    cfg.persons = 200;
    auto ds = ldbc::GenerateSnb(mgr_, store_, cfg);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    ds_ = new SnbDataset(std::move(*ds));
    ASSERT_TRUE(ldbc::CreateSnbIndexes(indexes_, ds_->schema,
                                       index::Placement::kHybrid)
                    .ok());
  }

  static void TearDownTestSuite() {
    delete engine_;
    delete cache_;
    delete mgr_;
    delete indexes_;
    delete ds_;
    delete store_;
    delete pool_;
  }

  Result<QueryResult> Run(const Plan& plan, std::vector<Value> params,
                          ExecutionMode mode, ExecStats* stats = nullptr) {
    auto tx = mgr_->Begin();
    auto r = engine_->Execute(plan, tx.get(), params, mode, stats);
    if (r.ok()) EXPECT_TRUE(tx->Commit().ok());
    return r;
  }

  static pmem::Pool* pool_;
  static storage::GraphStore* store_;
  static index::IndexManager* indexes_;
  static tx::TransactionManager* mgr_;
  static QueryCache* cache_;
  static JitQueryEngine* engine_;
  static SnbDataset* ds_;
};

pmem::Pool* JitTest::pool_ = nullptr;
storage::GraphStore* JitTest::store_ = nullptr;
index::IndexManager* JitTest::indexes_ = nullptr;
tx::TransactionManager* JitTest::mgr_ = nullptr;
QueryCache* JitTest::cache_ = nullptr;
JitQueryEngine* JitTest::engine_ = nullptr;
SnbDataset* JitTest::ds_ = nullptr;

TEST_F(JitTest, ScanFilterProjectMatchesInterpreter) {
  const auto& s = ds_->schema;
  Plan p = PlanBuilder()
               .NodeScan(s.person)
               .FilterProperty(0, s.id, CmpOp::kLe,
                               Expr::Literal(Value::Int(50)))
               .Project({Expr::Property(0, s.id),
                         Expr::Property(0, s.first_name)})
               .Build();
  auto aot = Run(p, {}, ExecutionMode::kInterpret);
  ExecStats stats;
  auto jit = Run(p, {}, ExecutionMode::kJit, &stats);
  ASSERT_TRUE(aot.ok() && jit.ok())
      << aot.status().ToString() << " / " << jit.status().ToString();
  EXPECT_TRUE(stats.used_jit);
  EXPECT_EQ(aot->rows.size(), 50u);
  EXPECT_TRUE(SameRows(*aot, *jit, /*order_sensitive=*/false));
}

TEST_F(JitTest, ExpandMatchesInterpreter) {
  const auto& s = ds_->schema;
  Plan p = PlanBuilder()
               .NodeScan(s.person)
               .FilterProperty(0, s.id, CmpOp::kEq, Expr::Param(0))
               .Expand(0, Direction::kOut, s.knows)
               .Project({Expr::Property(2, s.id),
                         Expr::Property(1, s.creation_date)})
               .Build();
  for (int64_t pid : {1, 7, 42, 100}) {
    auto aot = Run(p, {Value::Int(pid)}, ExecutionMode::kInterpret);
    auto jit = Run(p, {Value::Int(pid)}, ExecutionMode::kJit);
    ASSERT_TRUE(aot.ok() && jit.ok());
    EXPECT_TRUE(SameRows(*aot, *jit)) << "person " << pid;
  }
}

TEST_F(JitTest, CountViaTailMatches) {
  const auto& s = ds_->schema;
  Plan p = PlanBuilder().NodeScan(s.comment).Count().Build();
  auto aot = Run(p, {}, ExecutionMode::kInterpret);
  auto jit = Run(p, {}, ExecutionMode::kJit);
  ASSERT_TRUE(aot.ok() && jit.ok());
  ASSERT_EQ(jit->rows.size(), 1u);
  EXPECT_EQ(aot->rows[0][0].AsInt(), jit->rows[0][0].AsInt());
  EXPECT_EQ(jit->rows[0][0].AsInt(), static_cast<int64_t>(ds_->comments.size()));
}

TEST_F(JitTest, IndexScanSourceMatches) {
  const auto& s = ds_->schema;
  Plan p = PlanBuilder()
               .IndexScan(s.person, s.id, Expr::Param(0))
               .Project({Expr::Property(0, s.first_name),
                         Expr::Property(0, s.last_name)})
               .Build();
  auto aot = Run(p, {Value::Int(33)}, ExecutionMode::kInterpret);
  auto jit = Run(p, {Value::Int(33)}, ExecutionMode::kJit);
  ASSERT_TRUE(aot.ok() && jit.ok())
      << aot.status().ToString() << " / " << jit.status().ToString();
  EXPECT_EQ(aot->rows.size(), 1u);
  EXPECT_TRUE(SameRows(*aot, *jit));
}

TEST_F(JitTest, AllShortReadsJitMatchesAot) {
  for (bool use_index : {false, true}) {
    auto queries = ldbc::BuildShortReads(ds_->schema, use_index);
    Rng rng(99);
    for (const auto& q : queries) {
      for (int i = 0; i < 5; ++i) {
        auto params = ldbc::DrawShortReadParams(*ds_, q.name, &rng);
        auto aot = Run(q.plan, params, ExecutionMode::kInterpret);
        auto jit = Run(q.plan, params, ExecutionMode::kJit);
        ASSERT_TRUE(aot.ok()) << q.name << ": " << aot.status().ToString();
        ASSERT_TRUE(jit.ok()) << q.name << ": " << jit.status().ToString();
        // Order-insensitive: morsel interleaving may reorder equal sort
        // keys and unordered results.
        EXPECT_TRUE(SameRows(*aot, *jit, /*order_sensitive=*/false))
            << q.name << " params=" << params[0].AsInt()
            << " use_index=" << use_index;
      }
    }
  }
}

TEST_F(JitTest, AllUpdatesRunThroughJit) {
  auto queries = ldbc::BuildUpdates(ds_->schema, &store_->dict(), true);
  ASSERT_TRUE(queries.ok());
  Rng rng(31);
  uint64_t rels_before = store_->relationships().size();
  for (const auto& q : *queries) {
    auto params = ldbc::DrawUpdateParams(ds_, q.name, &rng);
    auto tx = mgr_->Begin();
    ExecStats stats;
    auto r = engine_->Execute(q.plan, tx.get(), params, ExecutionMode::kJit,
                              &stats);
    ASSERT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
    ASSERT_TRUE(tx->Commit().ok()) << q.name;
  }
  EXPECT_GT(store_->relationships().size(), rels_before);
}

TEST_F(JitTest, CompilationIsMemoized) {
  const auto& s = ds_->schema;
  Plan p = PlanBuilder().NodeScan(s.tag).Count().Build();
  ExecStats first, second;
  ASSERT_TRUE(Run(p, {}, ExecutionMode::kJit, &first).ok());
  ASSERT_TRUE(Run(p, {}, ExecutionMode::kJit, &second).ok());
  EXPECT_TRUE(second.memo_hit || second.cache_hit);
  EXPECT_EQ(second.compile_ms, 0.0);
}

TEST_F(JitTest, PersistentCacheServesNewEngine) {
  const auto& s = ds_->schema;
  Plan p = PlanBuilder()
               .NodeScan(s.forum)
               .Project({Expr::Property(0, s.id)})
               .Build();
  auto first = Run(p, {}, ExecutionMode::kJit);
  ASSERT_TRUE(first.ok());
  uint64_t cached = cache_->size();
  EXPECT_GT(cached, 0u);

  // A brand-new engine (fresh LLJIT, empty memo) must link the persisted
  // object instead of recompiling.
  auto engine2 = JitQueryEngine::Create(store_, indexes_, 2, cache_);
  ASSERT_TRUE(engine2.ok());
  auto tx = mgr_->Begin();
  ExecStats stats;
  auto r = (*engine2)->Execute(p, tx.get(), {}, ExecutionMode::kJit, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(tx->Commit().ok());
  EXPECT_TRUE(stats.cache_hit);
  EXPECT_TRUE(SameRows(*first, *r, /*order_sensitive=*/false));
}

TEST_F(JitTest, AdaptiveMatchesInterpreter) {
  const auto& s = ds_->schema;
  Plan p = PlanBuilder()
               .NodeScan(s.person)
               .Expand(0, Direction::kOut, s.knows)
               .Count()
               .Build();
  auto aot = Run(p, {}, ExecutionMode::kInterpret);
  ASSERT_TRUE(aot.ok());
  // First adaptive run may finish before compilation lands; run twice.
  ExecStats stats;
  auto a1 = Run(p, {}, ExecutionMode::kAdaptive, &stats);
  ASSERT_TRUE(a1.ok()) << a1.status().ToString();
  EXPECT_EQ(aot->rows[0][0].AsInt(), a1->rows[0][0].AsInt());
  engine_->WaitForBackgroundCompiles();
  auto a2 = Run(p, {}, ExecutionMode::kAdaptive, &stats);
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(aot->rows[0][0].AsInt(), a2->rows[0][0].AsInt());
  EXPECT_GT(stats.jit_morsels, 0u)
      << "second adaptive run should execute compiled code (memoized)";
  engine_->WaitForBackgroundCompiles();
}

TEST_F(JitTest, UnoptimizedCompilationStillCorrect) {
  const auto& s = ds_->schema;
  Plan p = PlanBuilder()
               .NodeScan(s.post)
               .FilterProperty(0, s.length, CmpOp::kGt,
                               Expr::Literal(Value::Int(100)))
               .Count()
               .Build();
  JitOptions no_opt;
  no_opt.optimize = false;
  auto aot = Run(p, {}, ExecutionMode::kInterpret);
  auto tx = mgr_->Begin();
  auto jit = engine_->Execute(p, tx.get(), {}, ExecutionMode::kJit, nullptr,
                              no_opt);
  ASSERT_TRUE(jit.ok()) << jit.status().ToString();
  ASSERT_TRUE(tx->Commit().ok());
  EXPECT_EQ(aot->rows[0][0].AsInt(), jit->rows[0][0].AsInt());
}

TEST_F(JitTest, JitSeesOwnUncommittedWrites) {
  const auto& s = ds_->schema;
  Plan count = PlanBuilder().NodeScan(s.person).Count().Build();
  auto tx = mgr_->Begin();
  auto before = engine_->Execute(count, tx.get(), {}, ExecutionMode::kJit);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(tx->CreateNode(s.person, {}).ok());
  auto after = engine_->Execute(count, tx.get(), {}, ExecutionMode::kJit);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows[0][0].AsInt(), before->rows[0][0].AsInt() + 1);
  tx->Abort();
}

}  // namespace
}  // namespace poseidon::jit
