#include "tx/transaction.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace poseidon::tx {
namespace {

using storage::DictCode;
using storage::kNullId;
using storage::Property;
using storage::PVal;
using storage::RecordId;

pmem::PoolOptions FastOptions(bool crash_shadow = false) {
  pmem::PoolOptions o;
  o.capacity = 256ull << 20;
  o.has_latency_override = true;
  o.latency_override = pmem::LatencyModel::Dram();
  o.crash_shadow = crash_shadow;
  return o;
}

class MvtoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pool = pmem::Pool::CreateVolatile(256ull << 20);
    ASSERT_TRUE(pool.ok());
    pool_ = std::move(*pool);
    auto store = storage::GraphStore::Create(pool_.get());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    mgr_ = std::make_unique<TransactionManager>(store_.get(), nullptr);
    label_ = *store_->Code("Person");
    name_ = *store_->Code("name");
    knows_ = *store_->Code("knows");
  }

  RecordId MakePerson(int64_t marker) {
    auto tx = mgr_->Begin();
    auto id = tx->CreateNode(label_, {{name_, PVal::Int(marker)}});
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(tx->Commit().ok());
    return *id;
  }

  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<storage::GraphStore> store_;
  std::unique_ptr<TransactionManager> mgr_;
  DictCode label_, name_, knows_;
};

TEST_F(MvtoTest, CreateCommitRead) {
  RecordId id = MakePerson(7);
  auto tx = mgr_->Begin();
  auto n = tx->GetNode(id);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(n->rec.label, label_);
  auto v = tx->GetNodeProperty(id, name_);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 7);
  EXPECT_TRUE(tx->Commit().ok());
  EXPECT_EQ(mgr_->commits(), 2u);
}

TEST_F(MvtoTest, UncommittedInsertInvisibleToOthers) {
  auto writer = mgr_->Begin();
  auto id = writer->CreateNode(label_, {});
  ASSERT_TRUE(id.ok());

  auto reader = mgr_->Begin();
  EXPECT_TRUE(reader->GetNode(*id).status().IsNotFound());
  reader->Abort();
  ASSERT_TRUE(writer->Commit().ok());

  auto late = mgr_->Begin();
  EXPECT_TRUE(late->GetNode(*id).ok());
}

TEST_F(MvtoTest, ReaderOlderThanCommitCannotSeeIt) {
  auto reader = mgr_->Begin();  // ts R
  auto writer = mgr_->Begin();  // ts W > R
  auto id = writer->CreateNode(label_, {});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(writer->Commit().ok());
  // Node committed with bts = W > R: invisible to the old reader.
  EXPECT_TRUE(reader->GetNode(*id).status().IsNotFound());
}

TEST_F(MvtoTest, AbortDiscardsInsert) {
  RecordId id;
  {
    auto tx = mgr_->Begin();
    auto r = tx->CreateNode(label_, {{name_, PVal::Int(1)}});
    ASSERT_TRUE(r.ok());
    id = *r;
    tx->Abort();
  }
  auto tx = mgr_->Begin();
  EXPECT_FALSE(tx->GetNode(id).ok());
  EXPECT_EQ(store_->nodes().size(), 0u);
  EXPECT_EQ(mgr_->aborts(), 1u);
}

TEST_F(MvtoTest, DestructorAbortsUnfinished) {
  { auto tx = mgr_->Begin(); ASSERT_TRUE(tx->CreateNode(label_, {}).ok()); }
  EXPECT_EQ(mgr_->aborts(), 1u);
  EXPECT_EQ(store_->nodes().size(), 0u);
}

TEST_F(MvtoTest, SnapshotReadOfOlderVersion) {
  RecordId id = MakePerson(1);

  auto old_reader = mgr_->Begin();  // snapshot before the update
  auto v0 = old_reader->GetNodeProperty(id, name_);
  ASSERT_TRUE(v0.ok());
  EXPECT_EQ(v0->AsInt(), 1);

  {
    auto writer = mgr_->Begin();
    ASSERT_TRUE(writer->SetNodeProperty(id, name_, PVal::Int(2)).ok());
    ASSERT_TRUE(writer->Commit().ok());
  }

  // The old reader must still see the pre-update value (from the DRAM
  // version chain), while a new reader sees the new one.
  auto v_old = old_reader->GetNodeProperty(id, name_);
  ASSERT_TRUE(v_old.ok()) << v_old.status().ToString();
  EXPECT_EQ(v_old->AsInt(), 1);

  auto fresh = mgr_->Begin();
  auto v_new = fresh->GetNodeProperty(id, name_);
  ASSERT_TRUE(v_new.ok());
  EXPECT_EQ(v_new->AsInt(), 2);
}

TEST_F(MvtoTest, WriteWriteConflictAborts) {
  RecordId id = MakePerson(1);
  auto t1 = mgr_->Begin();
  auto t2 = mgr_->Begin();
  ASSERT_TRUE(t1->SetNodeProperty(id, name_, PVal::Int(10)).ok());
  Status s = t2->SetNodeProperty(id, name_, PVal::Int(20));
  EXPECT_TRUE(s.IsAborted()) << s.ToString();
  t2->Abort();
  ASSERT_TRUE(t1->Commit().ok());
  auto check = mgr_->Begin();
  EXPECT_EQ(check->GetNodeProperty(id, name_)->AsInt(), 10);
}

TEST_F(MvtoTest, ReaderAbortsOnForeignLock) {
  RecordId id = MakePerson(1);
  auto writer = mgr_->Begin();
  ASSERT_TRUE(writer->SetNodeProperty(id, name_, PVal::Int(5)).ok());
  auto reader = mgr_->Begin();
  // Paper §5.1: "In case of a lock held by another transaction, the
  // transaction is aborted."
  EXPECT_TRUE(reader->GetNode(id).status().IsAborted());
}

TEST_F(MvtoTest, WriteAfterNewerReadAborts) {
  RecordId id = MakePerson(1);
  auto old_writer = mgr_->Begin();  // ts W
  auto new_reader = mgr_->Begin();  // ts R > W
  ASSERT_TRUE(new_reader->GetNode(id).ok());  // sets rts = R
  // MVTO write rule: W < rts means the read would be invalidated.
  Status s = old_writer->SetNodeProperty(id, name_, PVal::Int(9));
  EXPECT_TRUE(s.IsAborted()) << s.ToString();
}

TEST_F(MvtoTest, RelationshipsLinkAndTraverse) {
  RecordId a = MakePerson(1);
  RecordId b = MakePerson(2);
  RecordId c = MakePerson(3);
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->CreateRelationship(a, b, knows_, {}).ok());
    ASSERT_TRUE(tx->CreateRelationship(a, c, knows_, {}).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto tx = mgr_->Begin();
  std::vector<RecordId> targets;
  ASSERT_TRUE(tx->ForEachOutgoing(a, [&](RecordId, const auto& rel) {
                    targets.push_back(rel.dst);
                    return true;
                  }).ok());
  // Head insertion: newest first.
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0], c);
  EXPECT_EQ(targets[1], b);

  std::vector<RecordId> sources;
  ASSERT_TRUE(tx->ForEachIncoming(b, [&](RecordId, const auto& rel) {
                    sources.push_back(rel.src);
                    return true;
                  }).ok());
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(sources[0], a);
}

TEST_F(MvtoTest, RelationshipVisibleOnlyAfterCommit) {
  RecordId a = MakePerson(1);
  RecordId b = MakePerson(2);
  auto writer = mgr_->Begin();
  ASSERT_TRUE(writer->CreateRelationship(a, b, knows_, {}).ok());

  // A concurrent reader aborts: the endpoints are write-locked (their
  // adjacency heads are being updated).
  auto reader = mgr_->Begin();
  EXPECT_TRUE(reader->GetNode(a).status().IsAborted());
  reader->Abort();
  ASSERT_TRUE(writer->Commit().ok());

  auto late = mgr_->Begin();
  int count = 0;
  ASSERT_TRUE(late->ForEachOutgoing(a, [&](RecordId, const auto&) {
                    ++count;
                    return true;
                  }).ok());
  EXPECT_EQ(count, 1);
}

TEST_F(MvtoTest, OldSnapshotDoesNotSeeNewRelationship) {
  RecordId a = MakePerson(1);
  RecordId b = MakePerson(2);
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->CreateRelationship(a, b, knows_, {}).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto old_reader = mgr_->Begin();
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->CreateRelationship(a, b, knows_, {}).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  int count = 0;
  ASSERT_TRUE(old_reader->ForEachOutgoing(a, [&](RecordId, const auto&) {
                    ++count;
                    return true;
                  }).ok());
  EXPECT_EQ(count, 1) << "snapshot must see only the first relationship";

  auto fresh = mgr_->Begin();
  count = 0;
  ASSERT_TRUE(fresh->ForEachOutgoing(a, [&](RecordId, const auto&) {
                    ++count;
                    return true;
                  }).ok());
  EXPECT_EQ(count, 2);
}

TEST_F(MvtoTest, DeleteRelationshipUnlinks) {
  RecordId a = MakePerson(1);
  RecordId b = MakePerson(2);
  RecordId c = MakePerson(3);
  RecordId r1, r2;
  {
    auto tx = mgr_->Begin();
    r1 = *tx->CreateRelationship(a, b, knows_, {});
    r2 = *tx->CreateRelationship(a, c, knows_, {});
    ASSERT_TRUE(tx->Commit().ok());
  }
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->DeleteRelationship(r1).ok()) << "delete tail of list";
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto tx = mgr_->Begin();
  std::vector<RecordId> ids;
  ASSERT_TRUE(tx->ForEachOutgoing(a, [&](RecordId id, const auto&) {
                    ids.push_back(id);
                    return true;
                  }).ok());
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], r2);
  EXPECT_TRUE(tx->GetRelationship(r1).status().IsNotFound());
}

TEST_F(MvtoTest, DeleteNodeRequiresNoRelationships) {
  RecordId a = MakePerson(1);
  RecordId b = MakePerson(2);
  RecordId r;
  {
    auto tx = mgr_->Begin();
    r = *tx->CreateRelationship(a, b, knows_, {});
    ASSERT_TRUE(tx->Commit().ok());
  }
  {
    auto tx = mgr_->Begin();
    Status s = tx->DeleteNode(a);
    EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
    tx->Abort();
  }
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->DeleteRelationship(r).ok());
    ASSERT_TRUE(tx->DeleteNode(a).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto check = mgr_->Begin();
  EXPECT_TRUE(check->GetNode(a).status().IsNotFound());
  EXPECT_TRUE(check->GetNode(b).ok());
}

TEST_F(MvtoTest, GarbageCollectionReclaimsOldVersions) {
  RecordId id = MakePerson(0);
  for (int i = 1; i <= 20; ++i) {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->SetNodeProperty(id, name_, PVal::Int(i)).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  // No active transactions: every superseded version is reclaimable.
  mgr_->RunGc();
  EXPECT_EQ(mgr_->node_versions().TotalVersions(), 0u);
  // Exactly one live property chain record should remain for this node.
  EXPECT_EQ(store_->properties().table()->size(), 1u);
}

TEST_F(MvtoTest, GcRetainsVersionsForActiveReaders) {
  RecordId id = MakePerson(0);
  auto old_reader = mgr_->Begin();
  ASSERT_TRUE(old_reader->GetNode(id).ok());
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->SetNodeProperty(id, name_, PVal::Int(1)).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  mgr_->RunGc();
  EXPECT_GE(mgr_->node_versions().TotalVersions(), 1u)
      << "version needed by the active reader must survive GC";
  auto v = old_reader->GetNodeProperty(id, name_);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 0);
  ASSERT_TRUE(old_reader->Commit().ok());
  mgr_->RunGc();
  EXPECT_EQ(mgr_->node_versions().TotalVersions(), 0u);
}

TEST_F(MvtoTest, SelfLoopRelationship) {
  RecordId a = MakePerson(1);
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->CreateRelationship(a, a, knows_, {}).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto tx = mgr_->Begin();
  int out = 0, in = 0;
  ASSERT_TRUE(tx->ForEachOutgoing(a, [&](RecordId, const auto&) {
                    ++out;
                    return true;
                  }).ok());
  ASSERT_TRUE(tx->ForEachIncoming(a, [&](RecordId, const auto&) {
                    ++in;
                    return true;
                  }).ok());
  EXPECT_EQ(out, 1);
  EXPECT_EQ(in, 1);
}

TEST_F(MvtoTest, MultiObjectCommitIsAtomicallyVisible) {
  // "updates of an arbitrary number of objects within a single transaction"
  RecordId a = MakePerson(1);
  RecordId b = MakePerson(2);
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->SetNodeProperty(a, name_, PVal::Int(100)).ok());
    ASSERT_TRUE(tx->SetNodeProperty(b, name_, PVal::Int(200)).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto tx = mgr_->Begin();
  EXPECT_EQ(tx->GetNodeProperty(a, name_)->AsInt(), 100);
  EXPECT_EQ(tx->GetNodeProperty(b, name_)->AsInt(), 200);
}

// --- Crash recovery ---------------------------------------------------------

TEST(MvtoRecoveryTest, InFlightTransactionRolledBackAfterCrash) {
  std::string path = testing::TempDir() + "/mvto_crash.pmem";
  std::filesystem::remove(path);
  {
    auto pool = pmem::Pool::Create(path, FastOptions());
    ASSERT_TRUE(pool.ok());
    auto store = storage::GraphStore::Create(pool->get());
    ASSERT_TRUE(store.ok());
    TransactionManager mgr(store->get(), nullptr);
    DictCode label = *(*store)->Code("Person");
    DictCode name = *(*store)->Code("name");

    {  // committed data
      auto tx = mgr.Begin();
      ASSERT_TRUE(tx->CreateNode(label, {{name, PVal::Int(1)}}).ok());
      ASSERT_TRUE(tx->Commit().ok());
    }
    {  // in-flight at "crash": locked insert + locked update
      auto tx = mgr.Begin();
      ASSERT_TRUE(tx->CreateNode(label, {}).ok());
      ASSERT_TRUE(tx->SetNodeProperty(0, name, PVal::Int(999)).ok());
      // Hard crash: leak transaction AND pool so neither aborts nor marks a
      // clean shutdown. The durable file now holds a locked committed
      // record and a locked uncommitted insert.
      (void)tx.release();
    }
    (void)pool->release();  // intentional leak: no clean-shutdown marker
  }
  {
    auto pool = pmem::Pool::Open(path, FastOptions());
    ASSERT_TRUE(pool.ok());
    EXPECT_TRUE((*pool)->recovered_from_crash());
    auto store = storage::GraphStore::Open(pool->get());
    ASSERT_TRUE(store.ok());
    TransactionManager mgr(store->get(), nullptr);
    ASSERT_TRUE(mgr.RecoverInFlight().ok());

    EXPECT_EQ((*store)->nodes().size(), 1u)
        << "uncommitted insert must be dropped";
    auto tx = mgr.Begin();
    auto v = tx->GetNodeProperty(0, *(*store)->Code("name"));
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    EXPECT_EQ(v->AsInt(), 1) << "uncommitted update must not survive";
    // The recovered record is writable again (lock released).
    ASSERT_TRUE(
        tx->SetNodeProperty(0, *(*store)->Code("name"), PVal::Int(2)).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  std::filesystem::remove(path);
}

TEST(MvtoRecoveryTest, CommittedDataSurvivesCleanRestart) {
  std::string path = testing::TempDir() + "/mvto_restart.pmem";
  std::filesystem::remove(path);
  RecordId a, b;
  DictCode label, name, knows;
  {
    auto pool = pmem::Pool::Create(path, FastOptions());
    auto store = storage::GraphStore::Create(pool->get());
    TransactionManager mgr(store->get(), nullptr);
    label = *(*store)->Code("Person");
    name = *(*store)->Code("name");
    knows = *(*store)->Code("knows");
    auto tx = mgr.Begin();
    a = *tx->CreateNode(label, {{name, PVal::Int(10)}});
    b = *tx->CreateNode(label, {{name, PVal::Int(20)}});
    ASSERT_TRUE(tx->CreateRelationship(a, b, knows, {}).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  {
    auto pool = pmem::Pool::Open(path, FastOptions());
    ASSERT_TRUE(pool.ok());
    EXPECT_FALSE((*pool)->recovered_from_crash());
    auto store = storage::GraphStore::Open(pool->get());
    ASSERT_TRUE(store.ok());
    TransactionManager mgr(store->get(), nullptr);
    auto tx = mgr.Begin();
    EXPECT_EQ(tx->GetNodeProperty(a, name)->AsInt(), 10);
    std::vector<RecordId> targets;
    ASSERT_TRUE(tx->ForEachOutgoing(a, [&](RecordId, const auto& rel) {
                      targets.push_back(rel.dst);
                      return true;
                    }).ok());
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(targets[0], b);
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace poseidon::tx
