// Additional transaction-layer edge cases: relationship property updates,
// finished-transaction guards, version chains on relationships, GC of
// deleted slots, and persistent-pointer registry behaviour.

#include <gtest/gtest.h>

#include "pmem/pptr.h"
#include "tx/transaction.h"

namespace poseidon::tx {
namespace {

using storage::DictCode;
using storage::PVal;
using storage::RecordId;

class TxEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pool = pmem::Pool::CreateVolatile(256ull << 20);
    ASSERT_TRUE(pool.ok());
    pool_ = std::move(*pool);
    auto store = storage::GraphStore::Create(pool_.get());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    mgr_ = std::make_unique<TransactionManager>(store_.get(), nullptr);
    node_ = *store_->Code("Node");
    edge_ = *store_->Code("edge");
    weight_ = *store_->Code("weight");
  }

  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<storage::GraphStore> store_;
  std::unique_ptr<TransactionManager> mgr_;
  DictCode node_, edge_, weight_;
};

TEST_F(TxEdgeTest, RelationshipPropertyUpdateIsVersioned) {
  RecordId a, b, rel;
  {
    auto tx = mgr_->Begin();
    a = *tx->CreateNode(node_, {});
    b = *tx->CreateNode(node_, {});
    rel = *tx->CreateRelationship(a, b, edge_, {{weight_, PVal::Int(1)}});
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto old_reader = mgr_->Begin();
  ASSERT_EQ(old_reader->GetRelationshipProperty(rel, weight_)->AsInt(), 1);
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->SetRelationshipProperty(rel, weight_, PVal::Int(2)).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  // Snapshot isolation applies to relationship properties too.
  EXPECT_EQ(old_reader->GetRelationshipProperty(rel, weight_)->AsInt(), 1);
  auto fresh = mgr_->Begin();
  EXPECT_EQ(fresh->GetRelationshipProperty(rel, weight_)->AsInt(), 2);
  auto props = fresh->GetRelationshipProperties(rel);
  ASSERT_TRUE(props.ok());
  ASSERT_EQ(props->size(), 1u);
}

TEST_F(TxEdgeTest, FinishedTransactionRejectsFurtherWork) {
  auto tx = mgr_->Begin();
  ASSERT_TRUE(tx->CreateNode(node_, {}).ok());
  ASSERT_TRUE(tx->Commit().ok());
  EXPECT_TRUE(tx->finished());
  EXPECT_FALSE(tx->CreateNode(node_, {}).ok());
  EXPECT_FALSE(tx->SetNodeProperty(0, weight_, PVal::Int(1)).ok());
  EXPECT_FALSE(tx->Commit().ok());
  tx->Abort();  // harmless no-op after finish
}

TEST_F(TxEdgeTest, WriteSetTracksTouchedObjects) {
  RecordId a, b;
  {
    auto tx = mgr_->Begin();
    a = *tx->CreateNode(node_, {});
    b = *tx->CreateNode(node_, {});
    EXPECT_EQ(tx->write_set_size(), 2u);
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto tx = mgr_->Begin();
  ASSERT_TRUE(tx->CreateRelationship(a, b, edge_, {}).ok());
  // Relationship + both endpoint nodes (adjacency heads changed).
  EXPECT_EQ(tx->write_set_size(), 3u);
  tx->Abort();
}

TEST_F(TxEdgeTest, RepeatedSetInSameTransactionKeepsLastValue) {
  RecordId id;
  {
    auto tx = mgr_->Begin();
    id = *tx->CreateNode(node_, {{weight_, PVal::Int(0)}});
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto tx = mgr_->Begin();
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(tx->SetNodeProperty(id, weight_, PVal::Int(i)).ok());
  }
  // Own uncommitted reads see the latest value.
  EXPECT_EQ(tx->GetNodeProperty(id, weight_)->AsInt(), 5);
  ASSERT_TRUE(tx->Commit().ok());
  auto check = mgr_->Begin();
  EXPECT_EQ(check->GetNodeProperty(id, weight_)->AsInt(), 5);
  // Only one version was superseded (one chain entry), not five.
  EXPECT_LE(mgr_->node_versions().TotalVersions(), 1u);
}

TEST_F(TxEdgeTest, DeletedNodeSlotIsRecycledAfterGc) {
  RecordId id;
  {
    auto tx = mgr_->Begin();
    id = *tx->CreateNode(node_, {{weight_, PVal::Int(1)}});
    ASSERT_TRUE(tx->Commit().ok());
  }
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->DeleteNode(id).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  mgr_->RunGc();  // no active tx: slot + property chain reclaimed
  EXPECT_EQ(store_->nodes().size(), 0u);
  EXPECT_EQ(store_->properties().table()->size(), 0u);
  // The slot is reused by the next insert (DG5).
  auto tx = mgr_->Begin();
  auto fresh = tx->CreateNode(node_, {});
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*fresh, id);
  ASSERT_TRUE(tx->Commit().ok());
}

TEST_F(TxEdgeTest, InsertAndDeleteInSameTransactionIsNetNoop) {
  auto tx = mgr_->Begin();
  auto id = tx->CreateNode(node_, {});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(tx->DeleteNode(*id).ok());
  ASSERT_TRUE(tx->Commit().ok());
  EXPECT_EQ(store_->nodes().size(), 0u);
}

TEST_F(TxEdgeTest, DeleteHeadOfAdjacencyList) {
  RecordId a, b, c, r1, r2;
  {
    auto tx = mgr_->Begin();
    a = *tx->CreateNode(node_, {});
    b = *tx->CreateNode(node_, {});
    c = *tx->CreateNode(node_, {});
    r1 = *tx->CreateRelationship(a, b, edge_, {});
    r2 = *tx->CreateRelationship(a, c, edge_, {});  // head of a's out-list
    ASSERT_TRUE(tx->Commit().ok());
  }
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->DeleteRelationship(r2).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto tx = mgr_->Begin();
  std::vector<RecordId> rels;
  ASSERT_TRUE(tx->ForEachOutgoing(a, [&](RecordId id, const auto&) {
                    rels.push_back(id);
                    return true;
                  }).ok());
  ASSERT_EQ(rels.size(), 1u);
  EXPECT_EQ(rels[0], r1);
}

TEST_F(TxEdgeTest, MinActiveTimestampTracksOldestTransaction) {
  auto t1 = mgr_->Begin();
  auto t2 = mgr_->Begin();
  EXPECT_EQ(mgr_->MinActiveTs(), t1->id());
  t1->Abort();
  EXPECT_EQ(mgr_->MinActiveTs(), t2->id());
  t2->Abort();
  EXPECT_GT(mgr_->MinActiveTs(), t2->id());
}

TEST_F(TxEdgeTest, GetNodePropertiesReturnsAll) {
  DictCode k1 = *store_->Code("k1");
  DictCode k2 = *store_->Code("k2");
  RecordId id;
  {
    auto tx = mgr_->Begin();
    id = *tx->CreateNode(node_, {{k1, PVal::Int(1)}, {k2, PVal::Bool(true)}});
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto tx = mgr_->Begin();
  auto props = tx->GetNodeProperties(id);
  ASSERT_TRUE(props.ok());
  EXPECT_EQ(props->size(), 2u);
}

// --- Persistent pointer registry (C6) ---------------------------------------

TEST(PPtrTest, RegistryRoundTrip) {
  auto pool = pmem::Pool::CreateVolatile(32ull << 20);
  ASSERT_TRUE(pool.ok());
  pmem::PoolRegistry::Instance().Register(pool->get());
  auto off = (*pool)->Allocate(64);
  ASSERT_TRUE(off.ok());
  auto* value = (*pool)->ToPtr<uint64_t>(*off);
  *value = 4711;

  pmem::PPtr<uint64_t> p((*pool)->pool_id(), *off);
  ASSERT_NE(p.get(), nullptr);
  EXPECT_EQ(*p, 4711u);
  EXPECT_EQ(p.get(), value);

  auto from_ptr = pmem::PPtr<uint64_t>::FromPtr(pool->get(), value);
  EXPECT_EQ(from_ptr.offset(), *off);

  pmem::PoolRegistry::Instance().Unregister((*pool)->pool_id());
  EXPECT_EQ(p.get(), nullptr) << "closed pools must not resolve";
  EXPECT_TRUE(pmem::PPtr<uint64_t>().IsNull());
}

}  // namespace
}  // namespace poseidon::tx
