// Fault-injection subsystem tests (tentpole legs 2 and 3): checksummed
// redo-log recovery that discards exactly the damaged segments, pool-header
// corruption detection, the deterministic FaultRegistry itself, diskgraph
// fsync/read fault recovery with WAL replay, and JIT compile-failure
// degradation to interpreted execution.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include "diskgraph/disk_graph.h"
#include "jit/jit_query_engine.h"
#include "tx/transaction.h"
#include "util/crc32c.h"
#include "util/fault.h"

namespace poseidon {
namespace {

using pmem::Offset;
using pmem::Pool;
using pmem::RecoveryReport;
using storage::DictCode;
using storage::PVal;
using storage::RecordId;
using util::FaultRegistry;

// --- FaultRegistry ----------------------------------------------------------

TEST(FaultRegistryTest, ArmedSiteFailsOnScheduleThenRecovers) {
  FaultRegistry& reg = FaultRegistry::Instance();
  reg.Reset();
  // Unarmed sites never fail.
  EXPECT_FALSE(reg.ShouldFail("test.site"));
  // "The 2nd evaluation from now fails, and so does the 3rd."
  reg.Arm("test.site", /*after=*/2, /*times=*/2);
  EXPECT_FALSE(reg.ShouldFail("test.site"));
  EXPECT_TRUE(reg.ShouldFail("test.site"));
  EXPECT_TRUE(reg.ShouldFail("test.site"));
  EXPECT_FALSE(reg.ShouldFail("test.site")) << "schedule exhausted";
  EXPECT_EQ(reg.fired("test.site"), 2u);
  EXPECT_EQ(reg.hits("test.site"), 5u);
  // Re-arming counts from now, not from the site's first evaluation.
  reg.Arm("test.site", 1, 1);
  EXPECT_TRUE(reg.ShouldFail("test.site"));
  EXPECT_FALSE(reg.ShouldFail("test.site"));
  reg.Reset();
}

TEST(FaultRegistryTest, EnvironmentArmsSiteOnFirstEvaluation) {
  FaultRegistry& reg = FaultRegistry::Instance();
  setenv("POSEIDON_FAULT_TEST_ENVSITE", "2:3", 1);
  reg.Reset();  // forget env_checked so the variable is re-read
  EXPECT_FALSE(reg.ShouldFail("test.envsite"));
  EXPECT_TRUE(reg.ShouldFail("test.envsite"));
  EXPECT_TRUE(reg.ShouldFail("test.envsite"));
  EXPECT_TRUE(reg.ShouldFail("test.envsite"));
  EXPECT_FALSE(reg.ShouldFail("test.envsite"));
  unsetenv("POSEIDON_FAULT_TEST_ENVSITE");

  setenv("POSEIDON_FAULT_TEST_ALWAYSSITE", "always", 1);
  reg.Reset();
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(reg.ShouldFail("test.alwayssite"));
  unsetenv("POSEIDON_FAULT_TEST_ALWAYSSITE");
  reg.Reset();
}

// --- Checksummed redo-log recovery -----------------------------------------

/// Writes a committed segment in the documented v3 layout; when
/// `corrupt_crc`, the stored checksum deliberately mismatches the entry
/// bytes (a torn entry flush under a durable marker).
void CraftSegment(Pool* pool, uint32_t seg_idx, uint64_t commit_ts,
                  Offset target, uint64_t value, bool corrupt_crc = false) {
  char* seg = pool->ToPtr<char>(pool->redo_log()->segment_offset(seg_idx));
  constexpr uint64_t kHdr = pmem::kRedoSegmentHeaderBytes;
  uint64_t state = 1, n = 1, len = 8;
  std::memcpy(seg + 8, &commit_ts, 8);
  std::memcpy(seg + 16, &n, 8);
  std::memcpy(seg + kHdr, &target, 8);
  std::memcpy(seg + kHdr + 8, &len, 8);
  std::memcpy(seg + kHdr + 16, &value, 8);
  uint64_t crc = util::Crc32c(seg + 8, 16);
  crc = util::Crc32c(seg + kHdr, 24, static_cast<uint32_t>(crc));
  if (corrupt_crc) crc ^= 0xdeadbeef;
  std::memcpy(seg + 24, &crc, 8);
  std::memcpy(seg, &state, 8);
}

TEST(RedoCorruptionTest, CorruptSegmentIsDiscardedWhileValidOneReplays) {
  auto pool_r = Pool::CreateVolatile(32ull << 20);
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  ASSERT_GE(pool->redo_log()->num_segments(), 2u);
  auto a = pool->AllocateZeroed(64);
  auto b = pool->AllocateZeroed(64);
  ASSERT_TRUE(a.ok() && b.ok());

  CraftSegment(pool, 0, /*commit_ts=*/5, *a, 111);
  CraftSegment(pool, 1, /*commit_ts=*/6, *b, 222, /*corrupt_crc=*/true);

  RecoveryReport report;
  EXPECT_TRUE(pool->redo_log()->Recover(&report));
  // The valid segment replayed; the corrupt one was discarded, NOT applied.
  EXPECT_EQ(*pool->ToPtr<uint64_t>(*a), 111u);
  EXPECT_EQ(*pool->ToPtr<uint64_t>(*b), 0u)
      << "corrupt redo data must never reach its target";
  EXPECT_EQ(report.segments_replayed, 1u);
  EXPECT_EQ(report.segments_discarded_corrupt, 1u);
  EXPECT_EQ(report.entries_applied, 1u);
  ASSERT_FALSE(report.status.ok());
  EXPECT_EQ(report.status.code(), StatusCode::kCorruption);
  ASSERT_FALSE(report.warnings.empty());
  EXPECT_NE(report.warnings[0].find("checksum"), std::string::npos)
      << report.warnings[0];

  // The discard is durable: a second recovery finds a clean log.
  RecoveryReport again;
  EXPECT_FALSE(pool->redo_log()->Recover(&again));
  EXPECT_TRUE(again.status.ok());
  EXPECT_EQ(again.segments_discarded_corrupt, 0u);
}

TEST(RedoCorruptionTest, GarbageEntryCountIsDiscardedNotWalkedOutOfBounds) {
  auto pool_r = Pool::CreateVolatile(32ull << 20);
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  auto a = pool->AllocateZeroed(64);
  ASSERT_TRUE(a.ok());

  CraftSegment(pool, 0, 5, *a, 111);
  // Stamp a garbage entry count AFTER the crc: bounds validation must reject
  // it before any checksum walk could run off the segment.
  char* seg = pool->ToPtr<char>(pool->redo_log()->segment_offset(0));
  uint64_t huge = ~0ull / 2;
  std::memcpy(seg + 16, &huge, 8);

  RecoveryReport report;
  EXPECT_FALSE(pool->redo_log()->Recover(&report));
  EXPECT_EQ(*pool->ToPtr<uint64_t>(*a), 0u);
  EXPECT_EQ(report.segments_discarded_corrupt, 1u);
  EXPECT_EQ(report.status.code(), StatusCode::kCorruption);
}

TEST(RedoCorruptionTest, GarbageStateWordIsResetWithoutCorruptionStatus) {
  auto pool_r = Pool::CreateVolatile(32ull << 20);
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  char* seg = pool->ToPtr<char>(pool->redo_log()->segment_offset(0));
  uint64_t garbage = 7;
  std::memcpy(seg, &garbage, 8);

  RecoveryReport report;
  EXPECT_FALSE(pool->redo_log()->Recover(&report));
  EXPECT_EQ(report.segments_reset_garbage, 1u);
  EXPECT_EQ(report.segments_discarded_corrupt, 0u);
  EXPECT_TRUE(report.status.ok())
      << "an uninitialized state word is not data corruption";
  ASSERT_FALSE(report.warnings.empty());
}

TEST(RedoCorruptionTest, CommittedTransactionSurvivesChecksummedRecovery) {
  // End-to-end: a real commit that crashed between marker and apply still
  // replays — the checksum must accept what the commit path writes.
  pmem::PoolOptions o;
  o.mode = pmem::PoolMode::kDram;
  o.capacity = 32ull << 20;
  o.crash_shadow = true;
  auto pool_r = Pool::Create("", o);
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  auto a = pool->AllocateZeroed(64);
  ASSERT_TRUE(a.ok());

  int drains = 0;
  pmem::RedoTx tx(pool->redo_log());
  uint64_t v = 42;
  tx.StageValue(*a, v);
  ASSERT_TRUE(tx.Commit(3, [&] {
                  pool->Drain();
                  if (++drains == 2) pool->FreezeShadow();
                }).ok());
  pool->SimulateCrash();
  RecoveryReport report;
  EXPECT_TRUE(pool->redo_log()->Recover(&report));
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(report.segments_replayed, 1u);
  EXPECT_EQ(*pool->ToPtr<uint64_t>(*a), 42u);
}

// --- Pool-header corruption -------------------------------------------------

TEST(HeaderCorruptionTest, BitFlipInHeaderConfigIsDetectedAtOpen) {
  std::string path = testing::TempDir() + "/header_corrupt.pmem";
  std::filesystem::remove(path);
  pmem::PoolOptions o;
  o.capacity = 16ull << 20;
  { auto pool = Pool::Create(path, o); ASSERT_TRUE(pool.ok()); }

  // Flip one bit in the pool_id field (offset 24): only the config checksum
  // can catch this — every individual field still "looks" plausible.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(24);
    char byte;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(24);
    f.write(&byte, 1);
  }

  auto reopened = Pool::Open(path, o);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
  EXPECT_NE(reopened.status().message().find("checksum"), std::string::npos)
      << reopened.status().ToString();
  std::filesystem::remove(path);
}

// --- Diskgraph fault recovery ----------------------------------------------

diskgraph::DiskGraphOptions FreshDiskDir(const std::string& name) {
  diskgraph::DiskGraphOptions o;
  o.dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(o.dir);
  return o;
}

TEST(DiskFaultTest, TransientFsyncFailureIsRetriedThenCommitSucceeds) {
  setenv("POSEIDON_DISK_FSYNC_US", "0", 1);
  FaultRegistry::Instance().Reset();
  auto o = FreshDiskDir("dg_fsync_retry");
  auto g = diskgraph::DiskGraph::Create(o);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  DictCode label = *(*g)->Code("N");
  ASSERT_TRUE((*g)->CreateNode(label, {}).ok());

  FaultRegistry::Instance().Arm("diskgraph.fsync", /*after=*/1, /*times=*/1);
  EXPECT_TRUE((*g)->Commit().ok()) << "one transient failure must be ridden "
                                      "out by the backoff retry";
  EXPECT_GE((*g)->fsync_retries(), 1u);
  FaultRegistry::Instance().Reset();
}

TEST(DiskFaultTest, PersistentFsyncFailureSurfacesThenRetryCommits) {
  setenv("POSEIDON_DISK_FSYNC_US", "0", 1);
  FaultRegistry::Instance().Reset();
  auto o = FreshDiskDir("dg_fsync_exhaust");
  auto g = diskgraph::DiskGraph::Create(o);
  ASSERT_TRUE(g.ok());
  DictCode label = *(*g)->Code("N");
  DictCode key = *(*g)->Code("v");
  auto id = (*g)->CreateNode(label, {{key, PVal::Int(7)}});
  ASSERT_TRUE(id.ok());

  FaultRegistry::Instance().Arm("diskgraph.fsync", 1,
                                FaultRegistry::kUnbounded);
  Status failed = (*g)->Commit();
  ASSERT_FALSE(failed.ok()) << "exhausted retries must surface, not hang";
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  EXPECT_NE(failed.message().find("injected"), std::string::npos);

  // The batch stayed in the dirty set: once the fault clears, a plain retry
  // commits it and the data survives a crash + reopen.
  FaultRegistry::Instance().Disarm("diskgraph.fsync");
  ASSERT_TRUE((*g)->Commit().ok());
  g->reset();  // close without flushing the page files: WAL is the truth

  auto reopened = diskgraph::DiskGraph::Create(o);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GE((*reopened)->wal_batches_replayed(), 1u);
  auto v = (*reopened)->GetNodeProperty(*id, key);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->AsInt(), 7);
  FaultRegistry::Instance().Reset();
  std::filesystem::remove_all(o.dir);
}

TEST(DiskFaultTest, TransientReadFailureIsRetried) {
  setenv("POSEIDON_DISK_FSYNC_US", "0", 1);
  FaultRegistry::Instance().Reset();
  auto o = FreshDiskDir("dg_read_retry");
  auto g = diskgraph::DiskGraph::Create(o);
  ASSERT_TRUE(g.ok());
  DictCode label = *(*g)->Code("N");
  DictCode key = *(*g)->Code("v");
  auto id = (*g)->CreateNode(label, {{key, PVal::Int(11)}});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*g)->Commit().ok());
  ASSERT_TRUE((*g)->DropCaches().ok());  // force the next access to pread

  FaultRegistry::Instance().Arm("diskgraph.read", 1, 1);
  auto v = (*g)->GetNodeProperty(*id, key);
  ASSERT_TRUE(v.ok()) << "one transient pread failure must be retried: "
                      << v.status().ToString();
  EXPECT_EQ(v->AsInt(), 11);
  EXPECT_GE((*g)->read_retries(), 1u);

  // An unbounded read fault exhausts the retries and surfaces IoError.
  ASSERT_TRUE((*g)->DropCaches().ok());
  FaultRegistry::Instance().Arm("diskgraph.read", 1,
                                FaultRegistry::kUnbounded);
  auto dead = (*g)->GetNode(*id);
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kIoError);
  FaultRegistry::Instance().Reset();
  std::filesystem::remove_all(o.dir);
}

TEST(DiskFaultTest, WalReplayRecoversCommittedBatchAndDropsUncommitted) {
  setenv("POSEIDON_DISK_FSYNC_US", "0", 1);
  FaultRegistry::Instance().Reset();
  auto o = FreshDiskDir("dg_wal_replay");
  RecordId n1, n2, rel;
  DictCode label, knows, key;
  {
    auto g = diskgraph::DiskGraph::Create(o);
    ASSERT_TRUE(g.ok());
    label = *(*g)->Code("Person");
    knows = *(*g)->Code("KNOWS");
    key = *(*g)->Code("v");
    n1 = *(*g)->CreateNode(label, {{key, PVal::Int(1)}});
    n2 = *(*g)->CreateNode(label, {{key, PVal::Int(2)}});
    rel = *(*g)->CreateRelationship(n1, n2, knows, {});
    ASSERT_TRUE((*g)->Commit().ok());
    // An uncommitted change after the commit: dirty in the buffer pool,
    // absent from the WAL — it must NOT survive the crash.
    ASSERT_TRUE((*g)->SetNodeProperty(n1, key, PVal::Int(999)).ok());
    // Destructor closes fds without flushing pools: the page files never
    // saw the committed pages either; only WAL replay can produce them.
  }

  auto g = diskgraph::DiskGraph::Create(o);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_GE((*g)->wal_batches_replayed(), 1u);
  EXPECT_EQ((*g)->num_nodes(), 2u);
  EXPECT_EQ((*g)->num_relationships(), 1u);
  auto v1 = (*g)->GetNodeProperty(n1, key);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->AsInt(), 1) << "uncommitted update must not survive";
  EXPECT_EQ((*g)->GetNodeProperty(n2, key)->AsInt(), 2);
  int out_edges = 0;
  ASSERT_TRUE((*g)
                  ->ForEachOutgoing(n1,
                                    [&](RecordId id,
                                        const diskgraph::DiskRel& r) {
                                      ++out_edges;
                                      EXPECT_EQ(id, rel);
                                      EXPECT_EQ(r.dst, n2);
                                      return true;
                                    })
                  .ok());
  EXPECT_EQ(out_edges, 1);

  // A second reopen replays nothing: the WAL was truncated.
  g->reset();
  auto again = diskgraph::DiskGraph::Create(o);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->wal_batches_replayed(), 0u);
  EXPECT_EQ((*again)->num_nodes(), 2u);
  std::filesystem::remove_all(o.dir);
}

// --- JIT graceful degradation ----------------------------------------------

TEST(JitFaultTest, CompileFailureDegradesToInterpreterNotQueryFailure) {
  FaultRegistry::Instance().Reset();
  auto pool = pmem::Pool::CreateVolatile(256ull << 20);
  ASSERT_TRUE(pool.ok());
  auto store = storage::GraphStore::Create(pool->get());
  ASSERT_TRUE(store.ok());
  index::IndexManager indexes(store->get());
  tx::TransactionManager mgr(store->get(), &indexes);
  DictCode label = *(*store)->Code("N");
  DictCode key = *(*store)->Code("id");
  constexpr int kNodes = 20;
  for (int i = 0; i < kNodes; ++i) {
    auto tx = mgr.Begin();
    ASSERT_TRUE(tx->CreateNode(label, {{key, PVal::Int(i)}}).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto engine =
      jit::JitQueryEngine::Create(store->get(), &indexes, 2, nullptr);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  query::Plan plan = query::PlanBuilder()
                         .NodeScan(label)
                         .Project({query::Expr::Property(0, key)})
                         .Build();

  // Every compile fails: kJit must run the interpreter and still answer.
  FaultRegistry::Instance().Arm("jit.compile", 1, FaultRegistry::kUnbounded);
  {
    auto tx = mgr.Begin();
    jit::ExecStats stats;
    auto r = (*engine)->Execute(plan, tx.get(), {},
                                jit::ExecutionMode::kJit, &stats);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(stats.jit_fallback);
    EXPECT_FALSE(stats.used_jit);
    EXPECT_EQ(r->rows.size(), static_cast<size_t>(kNodes));
    ASSERT_TRUE(tx->Commit().ok());
  }
  // Adaptive mode: same degradation, all morsels interpreted.
  {
    auto tx = mgr.Begin();
    jit::ExecStats stats;
    auto r = (*engine)->Execute(plan, tx.get(), {},
                                jit::ExecutionMode::kAdaptive, &stats);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(stats.jit_fallback);
    EXPECT_EQ(stats.jit_morsels, 0u);
    EXPECT_EQ(r->rows.size(), static_cast<size_t>(kNodes));
    ASSERT_TRUE(tx->Commit().ok());
  }
  // Fault cleared: the same plan compiles and runs jitted.
  FaultRegistry::Instance().Disarm("jit.compile");
  {
    auto tx = mgr.Begin();
    jit::ExecStats stats;
    auto r = (*engine)->Execute(plan, tx.get(), {},
                                jit::ExecutionMode::kJit, &stats);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(stats.jit_fallback);
    EXPECT_TRUE(stats.used_jit);
    EXPECT_EQ(r->rows.size(), static_cast<size_t>(kNodes));
    ASSERT_TRUE(tx->Commit().ok());
  }
  FaultRegistry::Instance().Reset();
}

}  // namespace
}  // namespace poseidon
