// Parallel commit pipeline tests: per-thread redo-log segments, cache-line
// flush coalescing (with LatencyModel accounting), group commit, and
// crash-recovery invariants under full write concurrency.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <thread>

#include "pmem/psan.h"
#include "tx/transaction.h"
#include "util/crc32c.h"
#include "util/random.h"

namespace poseidon::pmem {
namespace {

using storage::DictCode;
using storage::kUnlocked;
using storage::PVal;
using storage::RecordId;
using tx::TransactionManager;

PoolOptions CrashDramOptions(uint64_t capacity = 64ull << 20) {
  PoolOptions o;
  o.mode = PoolMode::kDram;
  o.capacity = capacity;
  o.crash_shadow = true;
  return o;
}

// --- Flush coalescing -----------------------------------------------------

TEST(FlushBatchTest, DedupesRepeatedLinesWithinOneBatch) {
  auto pool_r = Pool::CreateVolatile(32ull << 20);
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  auto a = pool->AllocateZeroed(256);
  ASSERT_TRUE(a.ok());
  char* p = pool->ToPtr<char>(*a);

  pool->ResetStats();
  FlushBatch batch(pool);
  batch.Flush(p, 8);        // line 0: paid
  batch.Flush(p + 16, 8);   // line 0 again: coalesced
  batch.Flush(p + 64, 8);   // line 1: paid
  batch.Flush(p, 72);       // lines 0+1: both coalesced
  EXPECT_EQ(pool->stats().flushed_lines, 2u);
  EXPECT_EQ(pool->stats().deduped_lines, 3u);

  // A new coalescing scope pays again.
  batch.Clear();
  batch.Flush(p, 8);
  EXPECT_EQ(pool->stats().flushed_lines, 3u);
}

TEST(FlushBatchTest, DedupedLinesCostNoFlushLatency) {
  // The acceptance check for the LatencyModel accounting: flushing the same
  // line N times within one commit costs ONE flush_line_ns, not N. Use an
  // exaggerated per-line cost so the spin waits dominate all overheads.
  PoolOptions o;
  o.capacity = 32ull << 20;
  o.has_latency_override = true;
  o.latency_override = LatencyModel{};
  o.latency_override.flush_line_ns = 20'000;  // 20 us per line
  std::string path = testing::TempDir() + "/flush_latency_test.pmem";
  std::filesystem::remove(path);
  auto pool_r = Pool::Create(path, o);
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  auto a = pool->AllocateZeroed(100 * kCacheLineSize);
  ASSERT_TRUE(a.ok());
  char* p = pool->ToPtr<char>(*a);

  pool->ResetStats();
  using Clock = std::chrono::steady_clock;
  FlushBatch dup(pool);
  auto t0 = Clock::now();
  for (int i = 0; i < 100; ++i) dup.Flush(p, 8);  // one line, 99 dedups
  auto t1 = Clock::now();
  FlushBatch uniq(pool);
  for (int i = 0; i < 100; ++i) uniq.Flush(p + i * kCacheLineSize, 8);
  auto t2 = Clock::now();

  EXPECT_EQ(pool->stats().flushed_lines, 101u);
  EXPECT_EQ(pool->stats().deduped_lines, 99u);
  auto dup_ns = (t1 - t0).count();
  auto uniq_ns = (t2 - t1).count();
  EXPECT_LT(dup_ns * 5, uniq_ns)
      << "100 coalesced flushes of one line must cost ~1/100th of 100 "
         "distinct lines (dup=" << dup_ns << "ns uniq=" << uniq_ns << "ns)";
  std::filesystem::remove(path);
}

TEST(CommitPipelineTest, PipelinedCommitDrainsThriceAndCoalesces) {
  auto pool_r = Pool::CreateVolatile(32ull << 20);
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  ASSERT_TRUE(pool->pipelined());
  auto a = pool->AllocateZeroed(64);
  ASSERT_TRUE(a.ok());

  pool->ResetStats();
  RedoTx tx(pool->redo_log());
  uint64_t v1 = 1, v2 = 2;
  tx.StageValue(*a, v1);       // same cache line twice: the apply-phase
  tx.StageValue(*a + 8, v2);   // flushes must coalesce
  ASSERT_TRUE(tx.Commit(1).ok());
  EXPECT_EQ(*pool->ToPtr<uint64_t>(*a), 1u);
  EXPECT_EQ(*pool->ToPtr<uint64_t>(*a + 8), 2u);
  EXPECT_EQ(pool->stats().drains, 3u)
      << "pipelined commit: entry drain, marker drain, apply drain — the "
         "marker clear is flushed but not drained";
  EXPECT_GT(pool->stats().deduped_lines, 0u);
}

TEST(CommitPipelineTest, SerializedBaselineKeepsFourDrains) {
  PoolOptions o;
  o.mode = PoolMode::kDram;
  o.capacity = 32ull << 20;
  o.commit_pipeline = 0;  // ablation baseline
  auto pool_r = Pool::Create("", o);
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  ASSERT_FALSE(pool->pipelined());
  EXPECT_EQ(pool->redo_log()->num_segments(), 1u);
  auto a = pool->AllocateZeroed(64);
  ASSERT_TRUE(a.ok());

  pool->ResetStats();
  RedoTx tx(pool->redo_log());
  uint64_t v = 7;
  tx.StageValue(*a, v);
  ASSERT_TRUE(tx.Commit(1).ok());
  EXPECT_EQ(*pool->ToPtr<uint64_t>(*a), 7u);
  EXPECT_EQ(pool->stats().drains, 4u) << "seed baseline: 4 drains/commit";
  EXPECT_EQ(pool->stats().deduped_lines, 0u) << "baseline never coalesces";
}

// --- Segmented recovery ---------------------------------------------------

/// Crafts a committed-but-unapplied segment using the documented layout:
/// [0] state, [8] commit_ts, [16] num_entries, [24] crc,
/// [32] {target, len, data}.
void CraftCommittedSegment(Pool* pool, uint32_t seg_idx, uint64_t commit_ts,
                           Offset target, uint64_t value) {
  char* seg = pool->ToPtr<char>(pool->redo_log()->segment_offset(seg_idx));
  uint64_t state = 1, n = 1, len = 8;
  std::memcpy(seg + 8, &commit_ts, 8);
  std::memcpy(seg + 16, &n, 8);
  std::memcpy(seg + kRedoSegmentHeaderBytes, &target, 8);
  std::memcpy(seg + kRedoSegmentHeaderBytes + 8, &len, 8);
  std::memcpy(seg + kRedoSegmentHeaderBytes + 16, &value, 8);
  uint64_t crc = util::Crc32c(seg + 8, 16);
  crc = util::Crc32c(seg + kRedoSegmentHeaderBytes, 24,
                     static_cast<uint32_t>(crc));
  std::memcpy(seg + 24, &crc, 8);
  std::memcpy(seg, &state, 8);
}

TEST(CommitPipelineTest, RecoveryReplaysSegmentsInCommitTimestampOrder) {
  // Two segments pending on the same target: the HIGHER commit timestamp
  // must win regardless of segment index (same-record commit order equals
  // timestamp order under MVTO locking).
  for (bool newer_in_segment_zero : {true, false}) {
    auto pool_r = Pool::CreateVolatile(32ull << 20);
    ASSERT_TRUE(pool_r.ok());
    Pool* pool = pool_r->get();
    ASSERT_GE(pool->redo_log()->num_segments(), 2u);
    auto a = pool->AllocateZeroed(64);
    ASSERT_TRUE(a.ok());

    uint32_t newer_seg = newer_in_segment_zero ? 0 : 1;
    uint32_t older_seg = newer_in_segment_zero ? 1 : 0;
    CraftCommittedSegment(pool, newer_seg, /*commit_ts=*/9, *a, 111);
    CraftCommittedSegment(pool, older_seg, /*commit_ts=*/4, *a, 222);

    EXPECT_TRUE(pool->redo_log()->Recover());
    EXPECT_EQ(*pool->ToPtr<uint64_t>(*a), 111u)
        << "newer_in_segment_zero=" << newer_in_segment_zero;
    // Markers cleared: a second recovery is a no-op.
    EXPECT_FALSE(pool->redo_log()->Recover());
  }
}

TEST(CommitPipelineTest, CrashBetweenMarkerAndApplyIsReplayed) {
  // Freeze the durable image right after the phase-2 (marker) drain via the
  // commit's drain hook: the marker is durable, the application is not.
  // Recovery must replay the segment.
  auto pool_r = Pool::Create("", CrashDramOptions());
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  auto a = pool->AllocateZeroed(64);
  ASSERT_TRUE(a.ok());

  int drains = 0;
  RedoTx tx(pool->redo_log());
  uint64_t v = 42;
  tx.StageValue(*a, v);
  ASSERT_TRUE(tx.Commit(3, [&] {
                  pool->Drain();
                  if (++drains == 2) pool->FreezeShadow();
                }).ok());
  EXPECT_EQ(drains, 3);

  pool->SimulateCrash();
  EXPECT_EQ(*pool->ToPtr<uint64_t>(*a), 0u) << "apply was not durable";
  EXPECT_TRUE(pool->redo_log()->Recover());
  EXPECT_EQ(*pool->ToPtr<uint64_t>(*a), 42u);
}

TEST(CommitPipelineTest, ConcurrentCommittersUseDistinctSegments) {
  auto pool_r = Pool::CreateVolatile(32ull << 20);
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  ASSERT_GE(pool->redo_log()->num_segments(), 2u);
  RedoTx a(pool->redo_log());
  RedoTx b(pool->redo_log());
  EXPECT_NE(a.segment(), b.segment());
}

// --- Group commit ---------------------------------------------------------

TEST(GroupCommitTest, SingleThreadedLeaderNeverWaits) {
  auto pool_r = Pool::CreateVolatile(64ull << 20);
  ASSERT_TRUE(pool_r.ok());
  auto store_r = storage::GraphStore::Create(pool_r->get());
  ASSERT_TRUE(store_r.ok());
  TransactionManager mgr(store_r->get(), nullptr);
  ASSERT_TRUE(mgr.group_commit_enabled());
  DictCode label = *(*store_r)->Code("N");

  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) {
    auto tx = mgr.Begin();
    ASSERT_TRUE(tx->CreateNode(label, {}).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto elapsed = std::chrono::steady_clock::now() - t0;
  // A lone committer is its own leader with a satisfied batch predicate:
  // 3 group drains per commit, no window sleeps.
  EXPECT_EQ(mgr.Stats().group_drains, 15u);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);
}

TEST(GroupCommitTest, ConcurrentCommittersShareLeaderDrains) {
  auto pool_r = Pool::CreateVolatile(256ull << 20);
  ASSERT_TRUE(pool_r.ok());
  auto store_r = storage::GraphStore::Create(pool_r->get());
  ASSERT_TRUE(store_r.ok());
  TransactionManager mgr(store_r->get(), nullptr);
  DictCode label = *(*store_r)->Code("N");

  constexpr int kThreads = 4, kPerThread = 100;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        auto tx = mgr.Begin();
        if (!tx->CreateNode(label, {}).ok() || !tx->Commit().ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mgr.commits(), static_cast<uint64_t>(kThreads * kPerThread));
  // Leaders drain once per batch: never more than 3 drains per commit, and
  // batching makes it strictly fewer whenever committers overlap.
  EXPECT_LE(mgr.Stats().group_drains, 3ull * kThreads * kPerThread);
  EXPECT_GT(mgr.Stats().group_drains, 0u);
  EXPECT_EQ(PsanTotalViolations(), 0u)
      << "group commit broke persist ordering";
}

// --- Crash torture under write concurrency --------------------------------

/// One torture round: 4 writers commit tagged triples concurrently, the
/// durable image freezes at a random instant, we "lose power", recover, and
/// every transaction must be all-or-nothing: each tag has 0 or 3 nodes.
void RunTortureRound(uint64_t seed) {
  auto pool_r = Pool::Create("", CrashDramOptions(48ull << 20));
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();

  DictCode label, tag_key;
  constexpr int kThreads = 4, kPerThread = 8, kNodesPerTx = 3;
  {
    auto store_r = storage::GraphStore::Create(pool);
    ASSERT_TRUE(store_r.ok());
    auto mgr = std::make_unique<TransactionManager>(store_r->get(), nullptr);
    label = *(*store_r)->Code("T");
    tag_key = *(*store_r)->Code("tag");

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          auto tx = mgr->Begin();
          int64_t tag = t * 10'000 + i;
          bool ok = true;
          for (int n = 0; n < kNodesPerTx; ++n) {
            ok = ok &&
                 tx->CreateNode(label, {{tag_key, PVal::Int(tag)}}).ok();
          }
          if (!ok || !tx->Commit().ok()) failures.fetch_add(1);
        }
      });
    }
    // Power fails at a random instant while all writers are running.
    Rng rng(seed);
    std::this_thread::sleep_for(std::chrono::microseconds(rng.Uniform(400)));
    pool->FreezeShadow();
    for (auto& th : threads) th.join();
    ASSERT_EQ(failures.load(), 0);
    // DRAM-side state (manager, tables) dies with the "crash".
  }

  pool->SimulateCrash();
  pool->redo_log()->Recover();
  auto store_r = storage::GraphStore::Open(pool);
  ASSERT_TRUE(store_r.ok()) << store_r.status().ToString();
  TransactionManager mgr(store_r->get(), nullptr);
  ASSERT_TRUE(mgr.RecoverInFlight().ok());

  // No lock may survive recovery, and every tag is all-or-nothing.
  std::map<int64_t, int> tag_counts;
  auto tx = mgr.Begin();
  (*store_r)->nodes().ForEach([&](RecordId id, storage::NodeRecord& rec) {
    EXPECT_EQ(rec.tx.txn_id, kUnlocked) << "seed " << seed << " node " << id;
    auto v = tx->GetNodeProperty(id, tag_key);
    ASSERT_TRUE(v.ok()) << "seed " << seed << " node " << id << ": "
                        << v.status().ToString();
    ++tag_counts[v->AsInt()];
  });
  for (const auto& [tag, count] : tag_counts) {
    EXPECT_EQ(count, kNodesPerTx)
        << "seed " << seed << ": transaction for tag " << tag
        << " was torn by the crash";
  }
  // Under a POSEIDON_PSAN build the whole round ran with the persist-order
  // sanitizer watching; the unmodified pipeline must stay clean. No-op
  // (always 0) in plain builds.
  EXPECT_EQ(PsanTotalViolations(), 0u)
      << "seed " << seed << ": commit pipeline broke persist ordering";
}

TEST(CommitPipelineTortureTest, ConcurrentCommitsAreAllOrNothing) {
  // Under ThreadSanitizer (10-20x slowdown) fewer rounds keep `ctest -L
  // tsan` tractable; the interleavings, not the round count, carry the
  // race coverage.
#if defined(__SANITIZE_THREAD__)
  constexpr uint64_t kRounds = 12;
#else
  constexpr uint64_t kRounds = 100;
#endif
  for (uint64_t seed = 1; seed <= kRounds; ++seed) RunTortureRound(seed);
}

// --- RecoverInFlight durability (satellite fix) ---------------------------

TEST(CommitPipelineTest, RecoveryPersistsClearedLocksDurably) {
  // A crash leaves (a) a locked committed record whose lock happened to be
  // durable and (b) an uncommitted insert. RecoverInFlight must flush BOTH
  // branches — the cleared txn_id and the dropped occupancy bit — so a
  // second crash right after recovery changes nothing.
  auto pool_r = Pool::Create("", CrashDramOptions());
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();

  DictCode label, key;
  RecordId committed;
  {
    auto store_r = storage::GraphStore::Create(pool);
    ASSERT_TRUE(store_r.ok());
    auto mgr = std::make_unique<TransactionManager>(store_r->get(), nullptr);
    label = *(*store_r)->Code("N");
    key = *(*store_r)->Code("v");
    {
      auto tx = mgr->Begin();
      committed = *tx->CreateNode(label, {{key, PVal::Int(1)}});
      ASSERT_TRUE(tx->Commit().ok());
    }
    auto tx = mgr->Begin();
    ASSERT_TRUE(tx->SetNodeProperty(committed, key, PVal::Int(2)).ok());
    ASSERT_TRUE(tx->CreateNode(label, {{key, PVal::Int(3)}}).ok());
    // The write lock is normally volatile; emulate the incidental line
    // flush (e.g. a neighbouring record's commit) that makes it durable.
    auto* rec = (*store_r)->nodes().AtForWrite(committed);
    pool->Persist(rec, sizeof(storage::NodeRecord));
    (void)tx.release();  // crash with the transaction in flight
  }

  pool->SimulateCrash();
  pool->redo_log()->Recover();
  {
    auto store_r = storage::GraphStore::Open(pool);
    ASSERT_TRUE(store_r.ok());
    ASSERT_NE((*store_r)->nodes().AtForWrite(committed)->tx.txn_id, kUnlocked)
        << "precondition: the crash left a durable lock";
    TransactionManager mgr(store_r->get(), nullptr);
    ASSERT_TRUE(mgr.RecoverInFlight().ok());
    EXPECT_EQ((*store_r)->nodes().size(), 1u);
    EXPECT_EQ((*store_r)->nodes().AtForWrite(committed)->tx.txn_id,
              kUnlocked);
  }

  // Second power loss immediately after recovery: the recovery writes
  // themselves must have been durable.
  pool->SimulateCrash();
  pool->redo_log()->Recover();
  auto store_r = storage::GraphStore::Open(pool);
  ASSERT_TRUE(store_r.ok());
  EXPECT_EQ((*store_r)->nodes().size(), 1u)
      << "dropped in-flight insert must stay dropped";
  EXPECT_EQ((*store_r)->nodes().AtForWrite(committed)->tx.txn_id, kUnlocked)
      << "cleared lock must stay cleared without re-running recovery";
  TransactionManager mgr(store_r->get(), nullptr);
  auto tx = mgr.Begin();
  auto v = tx->GetNodeProperty(committed, key);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 1) << "uncommitted update must not survive";
  EXPECT_EQ(PsanTotalViolations(), 0u)
      << "recovery writes broke persist ordering";
}

}  // namespace
}  // namespace poseidon::pmem
