// Tests for the engine extensions beyond the paper's core: the hybrid
// DRAM/PMem dictionary decode cache (§8 future work), the GroupBy
// aggregate operator, and the EXPLAIN plan printer.

#include <gtest/gtest.h>

#include "query/engine.h"

namespace poseidon {
namespace {

using query::AggFn;
using query::CmpOp;
using query::Expr;
using query::Plan;
using query::PlanBuilder;
using query::QueryEngine;
using query::Value;
using storage::PVal;

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pool = pmem::Pool::CreateVolatile(256ull << 20);
    ASSERT_TRUE(pool.ok());
    pool_ = std::move(*pool);
    auto store = storage::GraphStore::Create(pool_.get());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    mgr_ = std::make_unique<tx::TransactionManager>(store_.get(), nullptr);
    engine_ = std::make_unique<QueryEngine>(store_.get(), nullptr, 2);
    person_ = *store_->Code("Person");
    city_ = *store_->Code("city");
    age_ = *store_->Code("age");

    // 30 persons across 3 cities with ages 0..29.
    auto tx = mgr_->Begin();
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(tx->CreateNode(person_,
                                 {{city_, PVal::Int(i % 3)},
                                  {age_, PVal::Int(i)}})
                      .ok());
    }
    ASSERT_TRUE(tx->Commit().ok());
  }

  Result<query::QueryResult> Run(const Plan& p) {
    auto tx = mgr_->Begin();
    auto r = engine_->Execute(p, tx.get(), {});
    if (r.ok()) EXPECT_TRUE(tx->Commit().ok());
    return r;
  }

  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<storage::GraphStore> store_;
  std::unique_ptr<tx::TransactionManager> mgr_;
  std::unique_ptr<QueryEngine> engine_;
  storage::DictCode person_, city_, age_;
};

// --- GroupBy -----------------------------------------------------------------

TEST_F(ExtensionsTest, GroupByCount) {
  Plan p = PlanBuilder()
               .NodeScan(person_)
               .GroupBy(Expr::Property(0, city_), AggFn::kCount,
                        Expr::Property(0, age_))
               .Build();
  auto r = Run(p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 3u);
  for (const auto& row : r->rows) {
    EXPECT_EQ(row[1].AsInt(), 10);
  }
}

TEST_F(ExtensionsTest, GroupBySumMinMaxAvg) {
  struct Case {
    AggFn fn;
    // expected per city 0 (ages 0,3,...,27)
    double expected;
  };
  // City 0 holds ages {0,3,6,...,27}: sum=135, min=0, max=27, avg=13.5.
  const Case cases[] = {{AggFn::kSum, 135},
                        {AggFn::kMin, 0},
                        {AggFn::kMax, 27},
                        {AggFn::kAvg, 13.5}};
  for (const Case& c : cases) {
    Plan p = PlanBuilder()
                 .NodeScan(person_)
                 .GroupBy(Expr::Property(0, city_), c.fn,
                          Expr::Property(0, age_))
                 .Build();
    auto r = Run(p);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->rows.size(), 3u);
    bool found = false;
    for (const auto& row : r->rows) {
      if (row[0].AsInt() != 0) continue;
      found = true;
      double got = row[1].kind() == Value::Kind::kDouble
                       ? row[1].AsDouble()
                       : static_cast<double>(row[1].AsInt());
      EXPECT_DOUBLE_EQ(got, c.expected)
          << "fn " << static_cast<int>(c.fn);
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(ExtensionsTest, GroupByAfterFilter) {
  Plan p = PlanBuilder()
               .NodeScan(person_)
               .FilterProperty(0, age_, CmpOp::kLt,
                               Expr::Literal(Value::Int(9)))
               .GroupBy(Expr::Property(0, city_), AggFn::kCount,
                        Expr::Property(0, age_))
               .Build();
  auto r = Run(p);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 3u);  // ages 0..8 cover all three cities
  int64_t total = 0;
  for (const auto& row : r->rows) total += row[1].AsInt();
  EXPECT_EQ(total, 9);
}

TEST_F(ExtensionsTest, GroupByParallelMatchesSerial) {
  Plan p = PlanBuilder()
               .NodeScan(person_)
               .GroupBy(Expr::Property(0, city_), AggFn::kSum,
                        Expr::Property(0, age_))
               .Build();
  auto tx = mgr_->Begin();
  auto serial = engine_->Execute(p, tx.get(), {}, /*parallel=*/false);
  auto parallel = engine_->Execute(p, tx.get(), {}, /*parallel=*/true);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ASSERT_TRUE(tx->Commit().ok());
  auto total = [](const query::QueryResult& r) {
    double t = 0;
    for (const auto& row : r.rows) {
      t += row[1].kind() == Value::Kind::kDouble
               ? row[1].AsDouble()
               : static_cast<double>(row[1].AsInt());
    }
    return t;
  };
  EXPECT_DOUBLE_EQ(total(*serial), total(*parallel));
}

// --- EXPLAIN -----------------------------------------------------------------

TEST_F(ExtensionsTest, ExplainRendersOperators) {
  Plan p = PlanBuilder()
               .NodeScan(person_)
               .FilterProperty(0, age_, CmpOp::kGe, Expr::Param(0))
               .Expand(0, query::Direction::kOut, city_)
               .Project({Expr::Property(2, age_)})
               .OrderBy(0, true, 5)
               .Build();
  std::string text = p.ToString(&store_->dict());
  EXPECT_NE(text.find("NodeScan(Person)"), std::string::npos) << text;
  EXPECT_NE(text.find("Filter(c0.age >= $0)"), std::string::npos) << text;
  EXPECT_NE(text.find("ForeachRelationship"), std::string::npos) << text;
  EXPECT_NE(text.find("OrderBy(c0 desc, limit 5)"), std::string::npos)
      << text;
  // Operators are printed source-first.
  EXPECT_LT(text.find("NodeScan"), text.find("Filter"));
}

TEST_F(ExtensionsTest, ExplainRendersJoinBuildSide) {
  Plan build = PlanBuilder().NodeScan(person_).Build();
  Plan p = PlanBuilder()
               .NodeScan(person_)
               .HashJoin(std::move(build), 0, 0)
               .Count()
               .Build();
  std::string text = p.ToString(&store_->dict());
  EXPECT_NE(text.find("HashJoin(c0 = c0) build:"), std::string::npos) << text;
  EXPECT_NE(text.find("Count()"), std::string::npos) << text;
}

TEST_F(ExtensionsTest, ExplainWithoutDictionaryUsesCodes) {
  Plan p = PlanBuilder().NodeScan(person_).Build();
  std::string text = p.ToString();
  EXPECT_NE(text.find("NodeScan(#" + std::to_string(person_) + ")"),
            std::string::npos)
      << text;
}

// --- Hybrid dictionary -------------------------------------------------------

TEST_F(ExtensionsTest, DecodeCacheReturnsSameStrings) {
  auto& dict = store_->dict();
  auto code = *dict.Encode("cached string");
  std::string before(*dict.Decode(code));
  dict.EnableDecodeCache();
  EXPECT_TRUE(dict.decode_cache_enabled());
  // First decode fills the cache, second one hits it.
  EXPECT_EQ(*dict.Decode(code), before);
  EXPECT_EQ(*dict.Decode(code), before);
  // New strings after enabling are also served correctly.
  auto code2 = *dict.Encode("later string");
  EXPECT_EQ(*dict.Decode(code2), "later string");
  EXPECT_FALSE(dict.Decode(9999).ok());
}

TEST_F(ExtensionsTest, DecodeCacheSkipsPmemLatency) {
  // With an exaggerated read latency, cached decodes must be much faster.
  pmem::PoolOptions options;
  options.capacity = 64ull << 20;
  options.mode = pmem::PoolMode::kDram;
  options.has_latency_override = true;
  options.latency_override.read_block_ns = 50000;  // 50 us per block
  auto pool = pmem::Pool::Create("", options);
  ASSERT_TRUE(pool.ok());
  auto dict = storage::Dictionary::Create(pool->get());
  ASSERT_TRUE(dict.ok());
  std::vector<storage::DictCode> codes;
  for (int i = 0; i < 64; ++i) {
    codes.push_back(*(*dict)->Encode("value_" + std::to_string(i)));
  }
  auto time_decodes = [&] {
    StopWatch w;
    for (int round = 0; round < 4; ++round) {
      for (auto c : codes) (void)*(*dict)->Decode(c);
    }
    return w.ElapsedUs();
  };
  double persistent_us = time_decodes();
  (*dict)->EnableDecodeCache();
  (void)time_decodes();  // fill
  double hybrid_us = time_decodes();
  EXPECT_LT(hybrid_us * 5, persistent_us)
      << "hybrid dictionary must avoid the PMem string reads";
}

}  // namespace
}  // namespace poseidon
