#include "diskgraph/snb_disk.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace poseidon::diskgraph {
namespace {

class DiskGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/diskgraph_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
    // No injected SSD latency in unit tests.
    setenv("POSEIDON_DISK_MISS_US", "0", 1);
    DiskGraphOptions options;
    options.dir = dir_;
    auto g = DiskGraph::Create(options);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    graph_ = std::move(*g);
  }

  void TearDown() override {
    graph_.reset();
    unsetenv("POSEIDON_DISK_MISS_US");
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
  std::unique_ptr<DiskGraph> graph_;
};

TEST_F(DiskGraphTest, CreateAndReadNode) {
  DictCode person = *graph_->Code("Person");
  DictCode name = *graph_->Code("name");
  auto id = graph_->CreateNode(person, {{name, PVal::Int(7)}});
  ASSERT_TRUE(id.ok());
  auto n = graph_->GetNode(*id);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->label, person);
  EXPECT_EQ(graph_->GetNodeProperty(*id, name)->AsInt(), 7);
  EXPECT_TRUE(graph_->GetNode(999).status().IsNotFound());
}

TEST_F(DiskGraphTest, RelationshipsAndTraversal) {
  DictCode person = *graph_->Code("Person");
  DictCode knows = *graph_->Code("knows");
  DictCode date = *graph_->Code("date");
  auto a = *graph_->CreateNode(person, {});
  auto b = *graph_->CreateNode(person, {});
  auto c = *graph_->CreateNode(person, {});
  ASSERT_TRUE(
      graph_->CreateRelationship(a, b, knows, {{date, PVal::Int(1)}}).ok());
  ASSERT_TRUE(
      graph_->CreateRelationship(a, c, knows, {{date, PVal::Int(2)}}).ok());
  std::vector<RecordId> targets;
  ASSERT_TRUE(graph_->ForEachOutgoing(a, [&](RecordId, const DiskRel& r) {
                      targets.push_back(r.dst);
                      return true;
                    }).ok());
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0], c);  // head insertion
  EXPECT_EQ(targets[1], b);
  int in_count = 0;
  ASSERT_TRUE(graph_->ForEachIncoming(b, [&](RecordId, const DiskRel&) {
                      ++in_count;
                      return true;
                    }).ok());
  EXPECT_EQ(in_count, 1);
}

TEST_F(DiskGraphTest, SetPropertyUpdatesAndInserts) {
  DictCode person = *graph_->Code("Person");
  DictCode age = *graph_->Code("age");
  DictCode city = *graph_->Code("city");
  auto id = *graph_->CreateNode(person, {{age, PVal::Int(30)}});
  ASSERT_TRUE(graph_->SetNodeProperty(id, age, PVal::Int(31)).ok());
  EXPECT_EQ(graph_->GetNodeProperty(id, age)->AsInt(), 31);
  ASSERT_TRUE(graph_->SetNodeProperty(id, city, PVal::Int(5)).ok());
  EXPECT_EQ(graph_->GetNodeProperty(id, city)->AsInt(), 5);
  EXPECT_EQ(graph_->GetNodeProperty(id, age)->AsInt(), 31);
}

TEST_F(DiskGraphTest, CommitWritesWal) {
  DictCode person = *graph_->Code("Person");
  ASSERT_TRUE(graph_->CreateNode(person, {}).ok());
  ASSERT_TRUE(graph_->Commit().ok());
  auto wal_size = std::filesystem::file_size(dir_ + "/wal.log");
  EXPECT_GT(wal_size, 0u);
  // Empty commit appends nothing.
  ASSERT_TRUE(graph_->Commit().ok());
  EXPECT_EQ(std::filesystem::file_size(dir_ + "/wal.log"), wal_size);
}

TEST_F(DiskGraphTest, BufferPoolEvictsBeyondCapacity) {
  DiskGraphOptions small;
  small.dir = dir_ + "_small";
  small.buffer_pages = 2;
  auto g = DiskGraph::Create(small);
  ASSERT_TRUE(g.ok());
  DictCode person = *(*g)->Code("Person");
  // 8192/32 = 256 nodes per page; create 10 pages worth.
  std::vector<RecordId> ids;
  for (int i = 0; i < 2560; ++i) {
    auto id = (*g)->CreateNode(person, {});
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE((*g)->Commit().ok());
  // Read them all back (forces eviction cycles).
  for (RecordId id : ids) {
    ASSERT_TRUE((*g)->GetNode(id).ok()) << id;
  }
  EXPECT_GT((*g)->buffer_misses(), 10u);
  g->reset();
  std::filesystem::remove_all(small.dir);
}

TEST_F(DiskGraphTest, DramIndexLookup) {
  DictCode person = *graph_->Code("Person");
  auto id = *graph_->CreateNode(person, {});
  graph_->IndexPut(person, 42, id);
  auto hit = graph_->IndexLookup(person, 42);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, id);
  EXPECT_TRUE(graph_->IndexLookup(person, 43).status().IsNotFound());
}

TEST(DiskSnbTest, LoadAndRunAllQueries) {
  setenv("POSEIDON_DISK_MISS_US", "0", 1);
  std::string dir = testing::TempDir() + "/disk_snb";
  std::filesystem::remove_all(dir);

  auto pool = pmem::Pool::CreateVolatile(1ull << 30);
  ASSERT_TRUE(pool.ok());
  auto store = storage::GraphStore::Create(pool->get());
  ASSERT_TRUE(store.ok());
  tx::TransactionManager mgr(store->get(), nullptr);
  ldbc::SnbConfig cfg;
  cfg.persons = 150;
  auto ds = ldbc::GenerateSnb(&mgr, store->get(), cfg);
  ASSERT_TRUE(ds.ok());

  DiskGraphOptions options;
  options.dir = dir;
  auto snb = LoadDiskSnbFromStore(store->get(), &mgr, *ds, options);
  ASSERT_TRUE(snb.ok()) << snb.status().ToString();
  EXPECT_EQ((*snb)->graph->num_nodes(), ds->total_nodes);
  EXPECT_EQ((*snb)->graph->num_relationships(), ds->total_relationships);

  Rng rng(5);
  const char* sr_names[] = {"IS1",      "IS2-post", "IS2-cmt", "IS3",
                            "IS4-post", "IS4-cmt",  "IS5-post", "IS5-cmt",
                            "IS6-post", "IS6-cmt",  "IS7-post", "IS7-cmt"};
  for (const char* name : sr_names) {
    uint64_t total = 0;
    for (int i = 0; i < 10; ++i) {
      auto params = ldbc::DrawShortReadParams(*ds, name, &rng);
      auto rows = RunDiskShortRead(snb->get(), name, params[0].AsInt());
      ASSERT_TRUE(rows.ok()) << name << ": " << rows.status().ToString();
      total += *rows;
    }
    EXPECT_GT(total, 0u) << name;
  }

  const char* iu_names[] = {"IU1", "IU2", "IU3", "IU4",
                            "IU5", "IU6", "IU7", "IU8"};
  uint64_t rels_before = (*snb)->graph->num_relationships();
  for (const char* name : iu_names) {
    // Fresh ids come from the dataset's own counters, so every id later
    // draws can reference exists in the disk store too.
    auto params = ldbc::DrawUpdateParams(ds.operator->(), name, &rng);
    std::vector<int64_t> raw;
    for (const auto& v : params) raw.push_back(v.AsInt());
    ASSERT_TRUE(RunDiskUpdate(snb->get(), name, raw).ok()) << name;
    ASSERT_TRUE((*snb)->graph->Commit().ok()) << name;
  }
  EXPECT_GT((*snb)->graph->num_relationships(), rels_before);

  snb->reset();
  unsetenv("POSEIDON_DISK_MISS_US");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace poseidon::diskgraph
