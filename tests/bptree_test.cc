#include "index/bptree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "util/random.h"

namespace poseidon::index {
namespace {

pmem::PoolOptions FastOptions() {
  pmem::PoolOptions o;
  o.capacity = 256ull << 20;
  o.has_latency_override = true;
  o.latency_override = pmem::LatencyModel::Dram();
  return o;
}

/// Parameterized over node placement: every invariant must hold for the
/// volatile, persistent, and hybrid trees alike.
class BPlusTreeTest : public ::testing::TestWithParam<Placement> {
 protected:
  void SetUp() override {
    if (GetParam() != Placement::kVolatile) {
      auto pool = pmem::Pool::CreateVolatile(256ull << 20);
      ASSERT_TRUE(pool.ok());
      pool_ = std::move(*pool);
    }
    auto tree = BPlusTree::Create(pool_.get(), GetParam());
    ASSERT_TRUE(tree.ok());
    tree_ = std::move(*tree);
  }

  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<BPlusTree> tree_;
};

TEST_P(BPlusTreeTest, EmptyTreeLookupMisses) {
  EXPECT_FALSE(tree_->Lookup(BTreeKey{1, 0}).ok());
  EXPECT_EQ(tree_->size(), 0u);
  EXPECT_EQ(tree_->height(), 1);
}

TEST_P(BPlusTreeTest, InsertLookupSingle) {
  ASSERT_TRUE(tree_->Insert(BTreeKey{10, 0}, 777).ok());
  auto v = tree_->Lookup(BTreeKey{10, 0});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 777u);
}

TEST_P(BPlusTreeTest, DuplicateInsertRejected) {
  ASSERT_TRUE(tree_->Insert(BTreeKey{1, 1}, 5).ok());
  Status s = tree_->Insert(BTreeKey{1, 1}, 6);
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(*tree_->Lookup(BTreeKey{1, 1}), 5u);
}

TEST_P(BPlusTreeTest, SequentialInsertAscending) {
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(tree_->Insert(BTreeKey{i, 0}, static_cast<uint64_t>(i)).ok());
  }
  EXPECT_EQ(tree_->size(), static_cast<uint64_t>(kN));
  EXPECT_GT(tree_->height(), 1);
  for (int i = 0; i < kN; i += 37) {
    auto v = tree_->Lookup(BTreeKey{i, 0});
    ASSERT_TRUE(v.ok()) << "key " << i;
    EXPECT_EQ(*v, static_cast<uint64_t>(i));
  }
}

TEST_P(BPlusTreeTest, RandomInsertLookupProperty) {
  // Property: after inserting a random permutation, every key resolves and
  // a full range scan yields all keys in sorted order.
  constexpr int kN = 5000;
  Rng rng(GetParam() == Placement::kHybrid ? 7 : 13);
  std::vector<int64_t> keys(kN);
  for (int i = 0; i < kN; ++i) keys[i] = static_cast<int64_t>(i);
  for (int i = kN - 1; i > 0; --i) {
    std::swap(keys[i], keys[rng.Uniform(static_cast<uint64_t>(i + 1))]);
  }
  for (int64_t k : keys) {
    ASSERT_TRUE(
        tree_->Insert(BTreeKey{k, 0}, static_cast<uint64_t>(k * 2)).ok());
  }
  for (int64_t k : keys) {
    auto v = tree_->Lookup(BTreeKey{k, 0});
    ASSERT_TRUE(v.ok()) << "key " << k;
    EXPECT_EQ(*v, static_cast<uint64_t>(k * 2));
  }
  std::vector<int64_t> scanned;
  tree_->ScanRange(BTreeKey{0, 0}, BTreeKey{kN, ~0ull},
                   [&](const BTreeKey& k, storage::RecordId) {
                     scanned.push_back(k.k);
                     return true;
                   });
  ASSERT_EQ(scanned.size(), static_cast<size_t>(kN));
  EXPECT_TRUE(std::is_sorted(scanned.begin(), scanned.end()));
}

TEST_P(BPlusTreeTest, DuplicatePrimaryKeysViaTiebreak) {
  for (uint64_t t = 0; t < 100; ++t) {
    ASSERT_TRUE(tree_->Insert(BTreeKey{42, t}, 1000 + t).ok());
  }
  uint64_t count = tree_->LookupAll(
      42, [&](const BTreeKey& k, storage::RecordId v) {
        EXPECT_EQ(v, 1000 + k.tie);
      });
  EXPECT_EQ(count, 100u);
  EXPECT_EQ(tree_->LookupAll(41, [](const BTreeKey&, storage::RecordId) {}),
            0u);
}

TEST_P(BPlusTreeTest, ScanRangeRespectsBounds) {
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree_->Insert(BTreeKey{i, 0}, static_cast<uint64_t>(i)).ok());
  }
  std::vector<int64_t> out;
  tree_->ScanRange(BTreeKey{100, 0}, BTreeKey{199, ~0ull},
                   [&](const BTreeKey& k, storage::RecordId) {
                     out.push_back(k.k);
                     return true;
                   });
  ASSERT_EQ(out.size(), 100u);
  EXPECT_EQ(out.front(), 100);
  EXPECT_EQ(out.back(), 199);
}

TEST_P(BPlusTreeTest, ScanEarlyTermination) {
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree_->Insert(BTreeKey{i, 0}, static_cast<uint64_t>(i)).ok());
  }
  int seen = 0;
  tree_->ScanRange(BTreeKey{0, 0}, BTreeKey{999, ~0ull},
                   [&](const BTreeKey&, storage::RecordId) {
                     return ++seen < 10;
                   });
  EXPECT_EQ(seen, 10);
}

TEST_P(BPlusTreeTest, RemoveThenMiss) {
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree_->Insert(BTreeKey{i, 0}, static_cast<uint64_t>(i)).ok());
  }
  for (int i = 0; i < 2000; i += 2) {
    ASSERT_TRUE(tree_->Remove(BTreeKey{i, 0}).ok()) << i;
  }
  EXPECT_EQ(tree_->size(), 1000u);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(tree_->Lookup(BTreeKey{i, 0}).ok(), i % 2 == 1) << i;
  }
  EXPECT_FALSE(tree_->Remove(BTreeKey{0, 0}).ok());
}

TEST_P(BPlusTreeTest, NegativeKeysOrderCorrectly) {
  for (int i = -500; i < 500; ++i) {
    ASSERT_TRUE(tree_->Insert(BTreeKey{i, 0}, static_cast<uint64_t>(i + 500))
                    .ok());
  }
  std::vector<int64_t> out;
  tree_->ScanRange(BTreeKey{-500, 0}, BTreeKey{499, ~0ull},
                   [&](const BTreeKey& k, storage::RecordId) {
                     out.push_back(k.k);
                     return true;
                   });
  ASSERT_EQ(out.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(out.front(), -500);
}

INSTANTIATE_TEST_SUITE_P(AllPlacements, BPlusTreeTest,
                         ::testing::Values(Placement::kVolatile,
                                           Placement::kPersistent,
                                           Placement::kHybrid),
                         [](const auto& info) {
                           switch (info.param) {
                             case Placement::kVolatile:
                               return "Volatile";
                             case Placement::kPersistent:
                               return "Persistent";
                             case Placement::kHybrid:
                               return "Hybrid";
                           }
                           return "Unknown";
                         });

TEST(BPlusTreeRecoveryTest, HybridRebuildInnerRestoresTree) {
  auto pool = pmem::Pool::CreateVolatile(256ull << 20);
  ASSERT_TRUE(pool.ok());
  pmem::Offset meta;
  {
    auto tree = BPlusTree::Create(pool->get(), Placement::kHybrid);
    ASSERT_TRUE(tree.ok());
    meta = (*tree)->meta_offset();
    for (int i = 0; i < 20000; ++i) {
      ASSERT_TRUE(
          (*tree)->Insert(BTreeKey{i, 0}, static_cast<uint64_t>(i)).ok());
    }
  }  // DRAM inner levels destroyed with the tree object
  auto tree = BPlusTree::Open(pool->get(), Placement::kHybrid, meta);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ((*tree)->size(), 20000u);
  for (int i = 0; i < 20000; i += 113) {
    auto v = (*tree)->Lookup(BTreeKey{i, 0});
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(*v, static_cast<uint64_t>(i));
  }
  // The recovered tree stays writable.
  ASSERT_TRUE((*tree)->Insert(BTreeKey{100000, 0}, 1).ok());
  EXPECT_TRUE((*tree)->Lookup(BTreeKey{100000, 0}).ok());
}

TEST(BPlusTreeRecoveryTest, PersistentTreeSurvivesPoolReopen) {
  std::string path = testing::TempDir() + "/bptree_reopen.pmem";
  std::filesystem::remove(path);
  pmem::Offset meta;
  {
    auto pool = pmem::Pool::Create(path, FastOptions());
    ASSERT_TRUE(pool.ok());
    auto tree = BPlusTree::Create(pool->get(), Placement::kPersistent);
    ASSERT_TRUE(tree.ok());
    meta = (*tree)->meta_offset();
    for (int i = 0; i < 5000; ++i) {
      ASSERT_TRUE(
          (*tree)->Insert(BTreeKey{i, 0}, static_cast<uint64_t>(i)).ok());
    }
  }
  {
    auto pool = pmem::Pool::Open(path, FastOptions());
    ASSERT_TRUE(pool.ok());
    auto tree = BPlusTree::Open(pool->get(), Placement::kPersistent, meta);
    ASSERT_TRUE(tree.ok());
    EXPECT_EQ((*tree)->size(), 5000u);
    EXPECT_EQ(*(*tree)->Lookup(BTreeKey{4321, 0}), 4321u);
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace poseidon::index
