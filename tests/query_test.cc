#include "query/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

namespace poseidon::query {
namespace {

using storage::DictCode;
using storage::Property;
using storage::PVal;
using storage::RecordId;

// A small social graph:
//   persons p0..p4 with age 20+i; p_i knows p_{i+1} (creationDate 100+i)
//   city c; every person livesIn c
class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pool = pmem::Pool::CreateVolatile(256ull << 20);
    ASSERT_TRUE(pool.ok());
    pool_ = std::move(*pool);
    auto store = storage::GraphStore::Create(pool_.get());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    indexes_ = std::make_unique<index::IndexManager>(store_.get());
    mgr_ = std::make_unique<tx::TransactionManager>(store_.get(),
                                                    indexes_.get());
    engine_ = std::make_unique<QueryEngine>(store_.get(), indexes_.get(), 2);

    person_ = *store_->Code("Person");
    city_ = *store_->Code("City");
    knows_ = *store_->Code("knows");
    lives_in_ = *store_->Code("livesIn");
    age_ = *store_->Code("age");
    id_key_ = *store_->Code("id");
    date_ = *store_->Code("creationDate");

    auto tx = mgr_->Begin();
    city_id_ = *tx->CreateNode(city_, {{id_key_, PVal::Int(1000)}});
    for (int i = 0; i < 5; ++i) {
      persons_[i] = *tx->CreateNode(
          person_, {{id_key_, PVal::Int(i)}, {age_, PVal::Int(20 + i)}});
      ASSERT_TRUE(
          tx->CreateRelationship(persons_[i], city_id_, lives_in_, {}).ok());
    }
    for (int i = 0; i + 1 < 5; ++i) {
      ASSERT_TRUE(tx->CreateRelationship(persons_[i], persons_[i + 1], knows_,
                                         {{date_, PVal::Int(100 + i)}})
                      .ok());
    }
    ASSERT_TRUE(tx->Commit().ok());
  }

  Result<QueryResult> Run(const Plan& plan, std::vector<Value> params = {},
                          bool parallel = false) {
    auto tx = mgr_->Begin();
    auto r = engine_->Execute(plan, tx.get(), params, parallel);
    if (r.ok()) EXPECT_TRUE(tx->Commit().ok());
    return r;
  }

  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<storage::GraphStore> store_;
  std::unique_ptr<index::IndexManager> indexes_;
  std::unique_ptr<tx::TransactionManager> mgr_;
  std::unique_ptr<QueryEngine> engine_;
  DictCode person_, city_, knows_, lives_in_, age_, id_key_, date_;
  RecordId persons_[5];
  RecordId city_id_;
};

TEST_F(QueryTest, NodeScanWithLabel) {
  Plan p = PlanBuilder().NodeScan(person_).Count().Build();
  auto r = Run(p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 5);
}

TEST_F(QueryTest, NodeScanAllLabels) {
  Plan p = PlanBuilder().NodeScan().Count().Build();
  auto r = Run(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 6);  // 5 persons + 1 city
}

TEST_F(QueryTest, FilterOnProperty) {
  Plan p = PlanBuilder()
               .NodeScan(person_)
               .FilterProperty(0, age_, CmpOp::kGt,
                               Expr::Literal(Value::Int(22)))
               .Project({Expr::Property(0, id_key_)})
               .Build();
  auto r = Run(p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);  // ages 23, 24
}

TEST_F(QueryTest, FilterWithParam) {
  Plan p = PlanBuilder()
               .NodeScan(person_)
               .FilterProperty(0, id_key_, CmpOp::kEq, Expr::Param(0))
               .Project({Expr::Property(0, age_)})
               .Build();
  auto r = Run(p, {Value::Int(3)});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 23);
}

TEST_F(QueryTest, ExpandOutgoing) {
  // p1 -knows-> p2: project the friend's age and the rel's creationDate.
  Plan p = PlanBuilder()
               .NodeScan(person_)
               .FilterProperty(0, id_key_, CmpOp::kEq,
                               Expr::Literal(Value::Int(1)))
               .Expand(0, Direction::kOut, knows_)
               .Project({Expr::Property(2, age_), Expr::Property(1, date_)})
               .Build();
  auto r = Run(p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 22);
  EXPECT_EQ(r->rows[0][1].AsInt(), 101);
}

TEST_F(QueryTest, ExpandIncomingWithNodeLabelFilter) {
  // City <-livesIn- persons.
  Plan p = PlanBuilder()
               .NodeScan(city_)
               .Expand(0, Direction::kIn, lives_in_, person_)
               .Count()
               .Build();
  auto r = Run(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 5);
}

TEST_F(QueryTest, ExpandRelLabelFilters) {
  // p1 has outgoing: livesIn(city), knows(p2). Only knows counted.
  Plan p = PlanBuilder()
               .NodeScan(person_)
               .FilterProperty(0, id_key_, CmpOp::kEq,
                               Expr::Literal(Value::Int(1)))
               .Expand(0, Direction::kOut, knows_)
               .Count()
               .Build();
  auto r = Run(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 1);
}

TEST_F(QueryTest, ExpandTransitiveFollowsChainToLabel) {
  // knows-chain p0 -> p1 -> ... -> p4; from p0 follow "knows" until the
  // node has... all have Person label, so stop immediately at p0 itself.
  // Instead: from p0 follow livesIn to City (1 hop).
  Plan p = PlanBuilder()
               .NodeScan(person_)
               .FilterProperty(0, id_key_, CmpOp::kEq,
                               Expr::Literal(Value::Int(0)))
               .ExpandTransitive(0, Direction::kOut, lives_in_, city_)
               .Project({Expr::Property(1, id_key_)})
               .Build();
  auto r = Run(p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 1000);
}

TEST_F(QueryTest, OrderByDescWithLimit) {
  Plan p = PlanBuilder()
               .NodeScan(person_)
               .Project({Expr::Property(0, age_)})
               .OrderBy(0, /*desc=*/true, /*limit=*/3)
               .Build();
  auto r = Run(p);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 24);
  EXPECT_EQ(r->rows[1][0].AsInt(), 23);
  EXPECT_EQ(r->rows[2][0].AsInt(), 22);
}

TEST_F(QueryTest, LimitStopsEarly) {
  Plan p = PlanBuilder().NodeScan(person_).Limit(2).Build();
  auto r = Run(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(QueryTest, HashJoinMatchesPairs) {
  // Join persons with persons on same city: 5x5 = 25 pairs.
  Plan build = PlanBuilder()
                   .NodeScan(person_)
                   .Expand(0, Direction::kOut, lives_in_)
                   .Project({Expr::Column(0), Expr::Column(2)})
                   .Build();
  Plan p = PlanBuilder()
               .NodeScan(person_)
               .Expand(0, Direction::kOut, lives_in_)
               .Project({Expr::Column(0), Expr::Column(2)})
               .HashJoin(std::move(build), /*left_key_col=*/1,
                         /*right_key_col=*/1)
               .Count()
               .Build();
  auto r = Run(p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 25);
}

TEST_F(QueryTest, ParallelScanMatchesSingleThreaded) {
  Plan p = PlanBuilder()
               .NodeScan(person_)
               .FilterProperty(0, age_, CmpOp::kGe,
                               Expr::Literal(Value::Int(21)))
               .Count()
               .Build();
  auto seq = Run(p);
  auto par = Run(p, {}, /*parallel=*/true);
  ASSERT_TRUE(seq.ok() && par.ok());
  EXPECT_EQ(seq->rows[0][0].AsInt(), par->rows[0][0].AsInt());
  EXPECT_EQ(par->rows[0][0].AsInt(), 4);
}

TEST_F(QueryTest, IndexScanUsesIndexAndRevalidates) {
  ASSERT_TRUE(
      indexes_->CreateIndex(person_, id_key_, index::Placement::kHybrid)
          .ok());
  Plan p = PlanBuilder()
               .IndexScan(person_, id_key_, Expr::Param(0))
               .Project({Expr::Property(0, age_)})
               .Build();
  auto r = Run(p, {Value::Int(4)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 24);
}

TEST_F(QueryTest, IndexRangeScan) {
  ASSERT_TRUE(
      indexes_->CreateIndex(person_, age_, index::Placement::kHybrid).ok());
  Plan p = PlanBuilder()
               .IndexRangeScan(person_, age_, Expr::Literal(Value::Int(21)),
                               Expr::Literal(Value::Int(23)))
               .Count()
               .Build();
  auto r = Run(p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 3);
}

TEST_F(QueryTest, ParallelIndexRangeScanMatchesSerial) {
  // Morsel parallelism is no longer NodeScan-only: the matching offsets of an
  // IndexRangeScan source are materialized and partitioned across workers.
  ASSERT_TRUE(
      indexes_->CreateIndex(person_, age_, index::Placement::kHybrid).ok());
  Plan p = PlanBuilder()
               .IndexRangeScan(person_, age_, Expr::Literal(Value::Int(21)),
                               Expr::Literal(Value::Int(24)))
               .Project({Expr::Property(0, id_key_),
                         Expr::Property(0, age_)})
               .Build();
  auto seq = Run(p);
  auto par = Run(p, {}, /*parallel=*/true);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  auto key = [](const std::vector<Value>& row) {
    return std::make_pair(row[0].AsInt(), row[1].AsInt());
  };
  auto sorted = [&](const QueryResult& r) {
    std::vector<std::pair<int64_t, int64_t>> rows;
    for (const auto& row : r.rows) rows.push_back(key(row));
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  EXPECT_EQ(sorted(*seq), sorted(*par));
  EXPECT_EQ(seq->rows.size(), 4u);

  // Aggregation across morsels merges at the breaker identically.
  Plan count = PlanBuilder()
                   .IndexRangeScan(person_, age_,
                                   Expr::Literal(Value::Int(21)),
                                   Expr::Literal(Value::Int(24)))
                   .Count()
                   .Build();
  auto cs = Run(count);
  auto cp = Run(count, {}, /*parallel=*/true);
  ASSERT_TRUE(cs.ok() && cp.ok());
  EXPECT_EQ(cs->rows[0][0].AsInt(), cp->rows[0][0].AsInt());
  EXPECT_EQ(cp->rows[0][0].AsInt(), 4);
}

TEST_F(QueryTest, IndexMaintainedAcrossCommits) {
  ASSERT_TRUE(
      indexes_->CreateIndex(person_, id_key_, index::Placement::kHybrid)
          .ok());
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(
        tx->CreateNode(person_, {{id_key_, PVal::Int(77)}}).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  Plan p = PlanBuilder()
               .IndexScan(person_, id_key_, Expr::Literal(Value::Int(77)))
               .Count()
               .Build();
  auto r = Run(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 1);
}

TEST_F(QueryTest, CreateNodePipeline) {
  Plan p = PlanBuilder()
               .CreateNode(person_, {id_key_, age_},
                           {Expr::Param(0), Expr::Param(1)})
               .Project({Expr::Property(0, age_)})
               .Build();
  auto tx = mgr_->Begin();
  auto r = engine_->Execute(p, tx.get(), {Value::Int(99), Value::Int(55)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 55);
  ASSERT_TRUE(tx->Commit().ok());

  Plan count = PlanBuilder().NodeScan(person_).Count().Build();
  auto c = Run(count);
  EXPECT_EQ(c->rows[0][0].AsInt(), 6);
}

TEST_F(QueryTest, CreateRelViaJoinPipeline) {
  // IU8-shaped plan: match two persons (scan+filter), join, create edge.
  Plan build = PlanBuilder()
                   .NodeScan(person_)
                   .FilterProperty(0, id_key_, CmpOp::kEq, Expr::Param(1))
                   .Project({Expr::Column(0), Expr::Literal(Value::Int(1))})
                   .Build();
  Plan p = PlanBuilder()
               .NodeScan(person_)
               .FilterProperty(0, id_key_, CmpOp::kEq, Expr::Param(0))
               .Project({Expr::Column(0), Expr::Literal(Value::Int(1))})
               .HashJoin(std::move(build), 1, 1)
               .CreateRel(/*src_column=*/0, /*dst_column=*/2, knows_, {date_},
                          {Expr::Param(2)})
               .Build();
  auto tx = mgr_->Begin();
  auto r = engine_->Execute(
      p, tx.get(), {Value::Int(0), Value::Int(4), Value::Int(777)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(tx->Commit().ok());

  // Verify p0 -knows-> p4 with the property set.
  Plan check = PlanBuilder()
                   .NodeScan(person_)
                   .FilterProperty(0, id_key_, CmpOp::kEq,
                                   Expr::Literal(Value::Int(0)))
                   .Expand(0, Direction::kOut, knows_)
                   .Project({Expr::Property(2, id_key_),
                             Expr::Property(1, date_)})
                   .Build();
  auto cr = Run(check);
  ASSERT_TRUE(cr.ok());
  ASSERT_EQ(cr->rows.size(), 2u);  // knows p1 (old) + p4 (new, head)
  EXPECT_EQ(cr->rows[0][0].AsInt(), 4);
  EXPECT_EQ(cr->rows[0][1].AsInt(), 777);
}

TEST_F(QueryTest, SetPropertyPipeline) {
  Plan p = PlanBuilder()
               .NodeScan(person_)
               .FilterProperty(0, id_key_, CmpOp::kEq, Expr::Param(0))
               .SetProperty(0, age_, Expr::Param(1))
               .Build();
  auto tx = mgr_->Begin();
  auto r = engine_->Execute(p, tx.get(), {Value::Int(2), Value::Int(88)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(tx->Commit().ok());

  auto check = mgr_->Begin();
  EXPECT_EQ(check->GetNodeProperty(persons_[2], age_)->AsInt(), 88);
}

TEST_F(QueryTest, SignatureStableAcrossParams) {
  auto mk = [&](int) {
    return PlanBuilder()
        .NodeScan(person_)
        .FilterProperty(0, id_key_, CmpOp::kEq, Expr::Param(0))
        .Build();
  };
  EXPECT_EQ(mk(1).Signature(), mk(2).Signature());
  Plan other = PlanBuilder().NodeScan(person_).Count().Build();
  EXPECT_NE(mk(1).Signature(), other.Signature());
}

TEST_F(QueryTest, UncommittedWritesVisibleToOwnQueries) {
  auto tx = mgr_->Begin();
  ASSERT_TRUE(tx->CreateNode(person_, {{id_key_, PVal::Int(500)}}).ok());
  Plan p = PlanBuilder().NodeScan(person_).Count().Build();
  auto r = engine_->Execute(p, tx.get(), {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 6) << "own insert visible pre-commit";
  tx->Abort();

  auto r2 = Run(p);
  EXPECT_EQ(r2->rows[0][0].AsInt(), 5);
}

}  // namespace
}  // namespace poseidon::query
