#include "storage/chunked_table.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "storage/records.h"

namespace poseidon::storage {
namespace {

pmem::PoolOptions FastOptions() {
  pmem::PoolOptions o;
  o.capacity = 128ull << 20;
  o.has_latency_override = true;
  o.latency_override = pmem::LatencyModel::Dram();
  return o;
}

using NodeTable = ChunkedTable<NodeRecord, 512>;

class ChunkedTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pool = pmem::Pool::CreateVolatile(128ull << 20);
    ASSERT_TRUE(pool.ok());
    pool_ = std::move(*pool);
    auto table = NodeTable::Create(pool_.get());
    ASSERT_TRUE(table.ok());
    table_ = std::move(*table);
  }

  NodeRecord MakeNode(DictCode label) {
    NodeRecord r;
    r.label = label;
    r.tx.bts = 1;
    return r;
  }

  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<NodeTable> table_;
};

TEST_F(ChunkedTableTest, ChunkGeometryFollowsDesignGoals) {
  // DG3: chunks are a multiple of the 256 B DCPMM block and records are
  // cache-line aligned within them.
  EXPECT_EQ(NodeTable::kChunkBytes % 256, 0u);
  EXPECT_EQ(NodeTable::kHeaderBytes % 64, 0u);
}

TEST_F(ChunkedTableTest, InsertAssignsSequentialIds) {
  for (uint64_t i = 0; i < 100; ++i) {
    auto id = table_->Insert(MakeNode(static_cast<DictCode>(i + 1)));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, i);
  }
  EXPECT_EQ(table_->size(), 100u);
}

TEST_F(ChunkedTableTest, AtReturnsInsertedContent) {
  auto id = table_->Insert(MakeNode(7));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(table_->At(*id)->label, 7u);
  EXPECT_TRUE(table_->IsOccupied(*id));
}

TEST_F(ChunkedTableTest, DeleteFreesAndReusesSlot) {
  auto a = table_->Insert(MakeNode(1));
  auto b = table_->Insert(MakeNode(2));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(table_->Delete(*a).ok());
  EXPECT_FALSE(table_->IsOccupied(*a));
  EXPECT_EQ(table_->size(), 1u);
  auto c = table_->Insert(MakeNode(3));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a) << "deleted slot must be recycled (DG5)";
  EXPECT_EQ(table_->At(*c)->label, 3u);
}

TEST_F(ChunkedTableTest, DeleteUnoccupiedFails) {
  EXPECT_FALSE(table_->Delete(5).ok());
  EXPECT_FALSE(table_->IsOccupied(kNullId));
}

TEST_F(ChunkedTableTest, GrowsAcrossManyChunks) {
  constexpr uint64_t kCount = 512 * 5 + 17;
  for (uint64_t i = 0; i < kCount; ++i) {
    auto id = table_->Insert(MakeNode(static_cast<DictCode>(i % 91 + 1)));
    ASSERT_TRUE(id.ok());
  }
  EXPECT_EQ(table_->size(), kCount);
  EXPECT_EQ(table_->num_chunks(), 6u);
  for (uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(table_->At(i)->label, i % 91 + 1);
  }
}

TEST_F(ChunkedTableTest, ForEachSkipsDeleted) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table_->Insert(MakeNode(static_cast<DictCode>(i + 1))).ok());
  }
  ASSERT_TRUE(table_->Delete(3).ok());
  ASSERT_TRUE(table_->Delete(7).ok());
  std::vector<RecordId> seen;
  table_->ForEach([&](RecordId id, NodeRecord&) { seen.push_back(id); });
  EXPECT_EQ(seen.size(), 8u);
  for (RecordId id : seen) {
    EXPECT_NE(id, 3u);
    EXPECT_NE(id, 7u);
  }
}

TEST_F(ChunkedTableTest, BatchScanMatchesForEachOnSparseTable) {
  // Build a pathological occupancy pattern across 3 chunks: every 64th slot
  // occupied (one bit per occupancy word), a whole chunk of empty words in
  // the middle, plus freed-and-recycled slots — then require ForEachBatch
  // to report exactly the records ForEach does, for several batch-size /
  // prefetch-distance combinations.
  constexpr uint64_t kCount = 512 * 3;
  for (uint64_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(
        table_->Insert(MakeNode(static_cast<DictCode>(i + 1))).ok());
  }
  for (uint64_t i = 0; i < kCount; ++i) {
    if (i % 64 != 0) {
      ASSERT_TRUE(table_->Delete(i).ok());
    }
  }
  // Whole-word gaps spanning chunk 1 entirely.
  for (uint64_t i = 512; i < 1024; i += 64) {
    ASSERT_TRUE(table_->Delete(i).ok());
  }
  // Freed slots recycled with fresh content.
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        table_->Insert(MakeNode(static_cast<DictCode>(9000 + i))).ok());
  }

  std::vector<std::pair<RecordId, DictCode>> expected;
  table_->ForEach([&](RecordId id, NodeRecord& r) {
    expected.emplace_back(id, r.label);
  });
  ASSERT_FALSE(expected.empty());

  ScanOptions combos[4];
  combos[0] = ScanOptions{};  // defaults: batch 256, prefetch 4
  combos[1].batch_size = 1;
  combos[2].batch_size = 7;   // batch boundary lands mid-word
  combos[2].prefetch_distance = 0;
  combos[3].batch_size = 65536;
  combos[3].prefetch_distance = 64;
  for (const ScanOptions& opts : combos) {
    std::vector<std::pair<RecordId, DictCode>> got;
    table_->ForEachBatch(
        [&](RecordId id, const NodeRecord& r) {
          got.emplace_back(id, r.label);
        },
        opts);
    EXPECT_EQ(got, expected) << "batch_size=" << opts.batch_size
                             << " prefetch=" << opts.prefetch_distance;
  }
}

TEST_F(ChunkedTableTest, BatchScanRangeHonorsMorselBounds) {
  for (uint64_t i = 0; i < 700; ++i) {
    ASSERT_TRUE(
        table_->Insert(MakeNode(static_cast<DictCode>(i + 1))).ok());
  }
  ASSERT_TRUE(table_->Delete(130).ok());
  // Range bounds intentionally not multiples of 64: the kernel must mask
  // partial first/last occupancy words.
  constexpr RecordId kBegin = 100, kEnd = 421;
  std::vector<RecordId> got;
  table_->ForEachBatchRange(kBegin, kEnd, ScanOptions{},
                            [&](RecordId id, const NodeRecord&) {
                              got.push_back(id);
                            });
  std::vector<RecordId> expected;
  for (RecordId id = kBegin; id < kEnd; ++id) {
    if (id != 130) expected.push_back(id);
  }
  EXPECT_EQ(got, expected);

  // End beyond NumSlots() clamps instead of reading past the table.
  got.clear();
  table_->ForEachBatchRange(650, table_->NumSlots() + 5000, ScanOptions{},
                            [&](RecordId id, const NodeRecord&) {
                              got.push_back(id);
                            });
  EXPECT_EQ(got.size(), 50u);
  EXPECT_EQ(got.front(), 650u);
  EXPECT_EQ(got.back(), 699u);
}

TEST(ChunkedTableDirectoryTest, DirectoryGrowthBeyondInitialCapacity) {
  // Small chunks (64 records) overflow the initial 1024-entry chunk
  // directory after 65536 records; GrowDirectory must relocate it without
  // losing any record.
  auto pool = pmem::Pool::CreateVolatile(512ull << 20);
  ASSERT_TRUE(pool.ok());
  using TinyTable = ChunkedTable<PropertyRecord, 64>;
  auto table = TinyTable::Create(pool->get());
  ASSERT_TRUE(table.ok());
  constexpr uint64_t kCount = 64 * 1024 + 64 * 8;  // > 1024 chunks
  for (uint64_t i = 0; i < kCount; ++i) {
    PropertyRecord rec;
    rec.owner = i;
    auto id = (*table)->Insert(rec);
    ASSERT_TRUE(id.ok()) << i;
  }
  EXPECT_GT((*table)->num_chunks(), 1024u);
  EXPECT_EQ((*table)->size(), kCount);
  for (uint64_t i = 0; i < kCount; i += 997) {
    ASSERT_EQ((*table)->At(i)->owner, i);
  }
  // Reopen rebuilds the mirror from the grown directory.
  auto reopened = TinyTable::Open(pool->get(), (*table)->meta_offset());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), kCount);
  EXPECT_EQ((*reopened)->At(kCount - 1)->owner, kCount - 1);
}

TEST(ChunkedTablePersistenceTest, SurvivesReopen) {
  std::string path = testing::TempDir() + "/table_reopen.pmem";
  std::filesystem::remove(path);
  pmem::Offset meta;
  {
    auto pool = pmem::Pool::Create(path, FastOptions());
    ASSERT_TRUE(pool.ok());
    auto table = NodeTable::Create(pool->get());
    ASSERT_TRUE(table.ok());
    meta = (*table)->meta_offset();
    for (uint64_t i = 0; i < 1000; ++i) {
      NodeRecord r;
      r.label = static_cast<DictCode>(i + 1);
      r.tx.bts = 1;
      ASSERT_TRUE((*table)->Insert(r).ok());
    }
    ASSERT_TRUE((*table)->Delete(500).ok());
  }
  {
    auto pool = pmem::Pool::Open(path, FastOptions());
    ASSERT_TRUE(pool.ok());
    auto table = NodeTable::Open(pool->get(), meta);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    EXPECT_EQ((*table)->size(), 999u);
    EXPECT_FALSE((*table)->IsOccupied(500));
    EXPECT_EQ((*table)->At(0)->label, 1u);
    EXPECT_EQ((*table)->At(999)->label, 1000u);
    // The freed slot must be recycled before fresh ones.
    NodeRecord r;
    r.label = 4242;
    r.tx.bts = 1;
    auto id = (*table)->Insert(r);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, 500u);
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace poseidon::storage
