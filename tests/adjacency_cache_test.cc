// Versioned DRAM adjacency cache (ISSUE 6): MVTO-correctness of the cached
// Expand path. The contract under test: ForEachNeighbor through the cache is
// observationally identical to the chain walk for every transaction — hits
// only for read snapshots that cover the array's stamp, fallback for writers,
// older snapshots and in-flight topology, hygiene invalidation/restamping at
// commit, and bounded DRAM via LRU eviction.

#include "tx/adjacency_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <tuple>

#include "query/engine.h"
#include "tx/transaction.h"
#include "util/random.h"

namespace poseidon::tx {
namespace {

using storage::DictCode;
using storage::PVal;
using storage::RecordId;

// (rel_id, rel_label, neighbor) triple as observed by ForEachNeighbor.
using Triple = std::tuple<RecordId, DictCode, RecordId>;

class AdjacencyCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pool = pmem::Pool::CreateVolatile(256ull << 20);
    ASSERT_TRUE(pool.ok());
    pool_ = std::move(*pool);
    auto store = storage::GraphStore::Create(pool_.get());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    indexes_ = std::make_unique<index::IndexManager>(store_.get());
    mgr_ = std::make_unique<TransactionManager>(store_.get(), indexes_.get());
    person_ = *store_->Code("Person");
    city_ = *store_->Code("City");
    knows_ = *store_->Code("knows");
    likes_ = *store_->Code("likes");
    name_ = *store_->Code("name");
  }

  RecordId MakeNode(DictCode label) {
    auto tx = mgr_->Begin();
    auto id = tx->CreateNode(label, {});
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(tx->Commit().ok());
    return *id;
  }

  RecordId Link(RecordId src, RecordId dst, DictCode label) {
    auto tx = mgr_->Begin();
    auto id = tx->CreateRelationship(src, dst, label, {});
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(tx->Commit().ok());
    return *id;
  }

  void Unlink(RecordId rel) {
    auto tx = mgr_->Begin();
    EXPECT_TRUE(tx->DeleteRelationship(rel).ok());
    EXPECT_TRUE(tx->Commit().ok());
  }

  // Collects ForEachNeighbor output (the cache-or-fallback path).
  static std::vector<Triple> Neighbors(Transaction* tx, RecordId node,
                                       AdjDir dir) {
    std::vector<Triple> out;
    EXPECT_TRUE(tx->ForEachNeighbor(node, dir,
                                    [&](RecordId rel, DictCode label,
                                        RecordId neighbor) {
                                      out.emplace_back(rel, label, neighbor);
                                      return true;
                                    })
                    .ok());
    return out;
  }

  // Collects the same triples through the raw chain walk (ground truth).
  static std::vector<Triple> ChainNeighbors(Transaction* tx, RecordId node,
                                            AdjDir dir) {
    std::vector<Triple> out;
    auto fn = [&](RecordId rel, const storage::RelationshipRecord& rec) {
      out.emplace_back(rel, rec.label,
                       dir == AdjDir::kOut ? rec.dst : rec.src);
      return true;
    };
    EXPECT_TRUE((dir == AdjDir::kOut ? tx->ForEachOutgoing(node, fn)
                                     : tx->ForEachIncoming(node, fn))
                    .ok());
    return out;
  }

  AdjacencyCache& cache() { return mgr_->adjacency_cache(); }

  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<storage::GraphStore> store_;
  std::unique_ptr<index::IndexManager> indexes_;
  std::unique_ptr<TransactionManager> mgr_;
  DictCode person_, city_, knows_, likes_, name_;
};

TEST_F(AdjacencyCacheTest, SecondReadHitsAndMatchesChainWalk) {
  RecordId hub = MakeNode(person_);
  std::vector<RecordId> spokes;
  for (int i = 0; i < 8; ++i) {
    spokes.push_back(MakeNode(person_));
    Link(hub, spokes.back(), i % 2 == 0 ? knows_ : likes_);
  }
  auto before = cache().stats();
  auto tx1 = mgr_->Begin();
  auto first = Neighbors(tx1.get(), hub, AdjDir::kOut);
  EXPECT_TRUE(tx1->Commit().ok());
  auto mid = cache().stats();
  EXPECT_EQ(mid.misses, before.misses + 1);  // build on first touch
  EXPECT_EQ(mid.inserts, before.inserts + 1);

  auto tx2 = mgr_->Begin();
  auto second = Neighbors(tx2.get(), hub, AdjDir::kOut);
  auto chain = ChainNeighbors(tx2.get(), hub, AdjDir::kOut);
  EXPECT_TRUE(tx2->Commit().ok());
  auto after = cache().stats();
  EXPECT_EQ(after.hits, mid.hits + 1);
  EXPECT_EQ(first, second);
  EXPECT_EQ(second, chain);
  EXPECT_EQ(second.size(), 8u);
}

TEST_F(AdjacencyCacheTest, TopologyChangeInvalidatesAndRebuilds) {
  RecordId hub = MakeNode(person_);
  RecordId a = MakeNode(person_);
  Link(hub, a, knows_);
  {
    auto tx = mgr_->Begin();
    ASSERT_EQ(Neighbors(tx.get(), hub, AdjDir::kOut).size(), 1u);  // warm
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto warmed = cache().stats();

  RecordId b = MakeNode(person_);
  RecordId rel_b = Link(hub, b, likes_);  // commit invalidates hub
  auto after_insert = cache().stats();
  EXPECT_GT(after_insert.invalidations, warmed.invalidations);

  auto tx = mgr_->Begin();
  auto got = Neighbors(tx.get(), hub, AdjDir::kOut);  // rebuild, fresh stamp
  EXPECT_EQ(got, ChainNeighbors(tx.get(), hub, AdjDir::kOut));
  ASSERT_EQ(got.size(), 2u);
  ASSERT_TRUE(tx->Commit().ok());

  Unlink(rel_b);  // deletes invalidate too
  auto tx2 = mgr_->Begin();
  auto got2 = Neighbors(tx2.get(), hub, AdjDir::kOut);
  ASSERT_EQ(got2.size(), 1u);
  EXPECT_EQ(std::get<2>(got2[0]), a);
  ASSERT_TRUE(tx2->Commit().ok());
}

TEST_F(AdjacencyCacheTest, WriterSeesOwnEdgesViaFallback) {
  RecordId hub = MakeNode(person_);
  RecordId a = MakeNode(person_);
  Link(hub, a, knows_);
  {
    auto tx = mgr_->Begin();
    ASSERT_EQ(Neighbors(tx.get(), hub, AdjDir::kOut).size(), 1u);  // warm
    ASSERT_TRUE(tx->Commit().ok());
  }

  RecordId b = MakeNode(person_);
  auto writer = mgr_->Begin();
  ASSERT_TRUE(writer->CreateRelationship(hub, b, likes_, {}).ok());
  // hub is in the writer's write set: must fall back and see the in-flight
  // edge; GetCachedAdjacency refuses to serve (or poison) the cache.
  EXPECT_EQ(writer->GetCachedAdjacency(hub, AdjDir::kOut), nullptr);
  auto own = Neighbors(writer.get(), hub, AdjDir::kOut);
  EXPECT_EQ(own.size(), 2u);
  writer->Abort();

  // The abort left the published array untouched: readers still hit it and
  // see only the committed edge.
  auto before = cache().stats();
  auto tx = mgr_->Begin();
  auto got = Neighbors(tx.get(), hub, AdjDir::kOut);
  ASSERT_TRUE(tx->Commit().ok());
  EXPECT_EQ(cache().stats().hits, before.hits + 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(std::get<2>(got[0]), a);
}

TEST_F(AdjacencyCacheTest, OlderSnapshotFallsBackToItsOwnView) {
  RecordId hub = MakeNode(person_);
  RecordId a = MakeNode(person_);
  Link(hub, a, knows_);

  auto old_reader = mgr_->Begin();  // snapshot before the topology change
  RecordId b = MakeNode(person_);
  Link(hub, b, likes_);             // newer committed topology

  // A current reader builds + serves the 2-edge array.
  auto fresh = mgr_->Begin();
  auto now = Neighbors(fresh.get(), hub, AdjDir::kOut);
  EXPECT_EQ(now.size(), 2u);
  EXPECT_TRUE(fresh->Commit().ok());

  // The old snapshot must not be served that array: its visible node version
  // has an older bts, so it chain-walks and sees only its own edge.
  auto old_view = Neighbors(old_reader.get(), hub, AdjDir::kOut);
  ASSERT_EQ(old_view.size(), 1u);
  EXPECT_EQ(std::get<2>(old_view[0]), a);
  EXPECT_EQ(old_view, ChainNeighbors(old_reader.get(), hub, AdjDir::kOut));
  EXPECT_TRUE(old_reader->Commit().ok());
}

TEST_F(AdjacencyCacheTest, PropertyOnlyCommitRestampsInsteadOfInvalidating) {
  RecordId hub = MakeNode(person_);
  Link(hub, MakeNode(person_), knows_);
  {
    auto tx = mgr_->Begin();
    ASSERT_EQ(Neighbors(tx.get(), hub, AdjDir::kOut).size(), 1u);  // warm
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto warmed = cache().stats();

  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->SetNodeProperty(hub, name_, PVal::Int(42)).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto after = cache().stats();
  EXPECT_EQ(after.invalidations, warmed.invalidations);  // restamped

  // The carried-forward entry still hits under the bumped node bts.
  auto tx = mgr_->Begin();
  auto got = Neighbors(tx.get(), hub, AdjDir::kOut);
  ASSERT_TRUE(tx->Commit().ok());
  EXPECT_EQ(cache().stats().hits, after.hits + 1);
  EXPECT_EQ(got.size(), 1u);
}

TEST_F(AdjacencyCacheTest, IncomingMirrorsOutgoing) {
  // Dense little digraph; every out-edge must appear exactly once as an
  // in-edge of its destination, through the cache, in both directions.
  constexpr int kN = 6;
  std::vector<RecordId> nodes;
  for (int i = 0; i < kN; ++i) nodes.push_back(MakeNode(person_));
  for (int i = 0; i < kN; ++i) {
    for (int j = 0; j < kN; ++j) {
      if (i != j && (i + j) % 3 != 0) Link(nodes[i], nodes[j], knows_);
    }
  }
  for (int pass = 0; pass < 2; ++pass) {  // pass 0 builds, pass 1 hits
    auto tx = mgr_->Begin();
    std::vector<std::pair<RecordId, RecordId>> out_pairs, in_pairs;
    for (RecordId n : nodes) {
      for (auto& [rel, label, neighbor] : Neighbors(tx.get(), n, AdjDir::kOut))
        out_pairs.emplace_back(n, neighbor);
      for (auto& [rel, label, neighbor] : Neighbors(tx.get(), n, AdjDir::kIn))
        in_pairs.emplace_back(neighbor, n);
    }
    std::sort(out_pairs.begin(), out_pairs.end());
    std::sort(in_pairs.begin(), in_pairs.end());
    EXPECT_EQ(out_pairs, in_pairs) << "pass " << pass;
    ASSERT_TRUE(tx->Commit().ok());
  }
}

TEST_F(AdjacencyCacheTest, DisabledCacheStillServesCorrectly) {
  RecordId hub = MakeNode(person_);
  Link(hub, MakeNode(person_), knows_);
  cache().set_enabled(false);
  auto before = cache().stats();
  auto tx = mgr_->Begin();
  auto got = Neighbors(tx.get(), hub, AdjDir::kOut);
  EXPECT_EQ(got, ChainNeighbors(tx.get(), hub, AdjDir::kOut));
  EXPECT_EQ(got.size(), 1u);
  ASSERT_TRUE(tx->Commit().ok());
  auto after = cache().stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.entries, 0u);
  cache().set_enabled(true);
}

TEST_F(AdjacencyCacheTest, RandomizedCacheVsChainEquivalence) {
  // Interleave topology mutations with reads across snapshots; after every
  // committed round, the cached path must agree with the chain walk for every
  // node and both directions — twice, so the second sweep exercises hits.
  constexpr int kN = 10;
  constexpr int kRounds = 50;
  Rng rng(2024);
  std::vector<RecordId> nodes;
  for (int i = 0; i < kN; ++i) nodes.push_back(MakeNode(person_));
  std::vector<RecordId> live_rels;

  for (int round = 0; round < kRounds; ++round) {
    auto tx = mgr_->Begin();
    if (!live_rels.empty() && rng.Uniform(3) == 0) {
      size_t pick = rng.Uniform(live_rels.size());
      ASSERT_TRUE(tx->DeleteRelationship(live_rels[pick]).ok());
      live_rels.erase(live_rels.begin() + pick);
    } else {
      auto rel = tx->CreateRelationship(nodes[rng.Uniform(kN)],
                                        nodes[rng.Uniform(kN)],
                                        rng.Uniform(2) ? knows_ : likes_, {});
      ASSERT_TRUE(rel.ok());
      live_rels.push_back(*rel);
    }
    // Sometimes a property write rides along (restamp interleaving).
    if (rng.Uniform(4) == 0) {
      ASSERT_TRUE(tx->SetNodeProperty(nodes[rng.Uniform(kN)], name_,
                                      PVal::Int(round))
                      .ok());
    }
    ASSERT_TRUE(tx->Commit().ok());

    auto reader = mgr_->Begin();
    for (int sweep = 0; sweep < 2; ++sweep) {
      for (RecordId n : nodes) {
        for (AdjDir dir : {AdjDir::kOut, AdjDir::kIn}) {
          EXPECT_EQ(Neighbors(reader.get(), n, dir),
                    ChainNeighbors(reader.get(), n, dir))
              << "round " << round << " node " << n << " dir "
              << static_cast<int>(dir);
        }
      }
    }
    ASSERT_TRUE(reader->Commit().ok());
  }
  auto st = cache().stats();
  EXPECT_GT(st.hits, 0u);
  EXPECT_GT(st.invalidations, 0u);
}

TEST_F(AdjacencyCacheTest, EvictionKeepsBytesBounded) {
  // Standalone cache instance with a tiny budget: inserting far more than
  // fits must evict LRU entries and keep the byte count at the cap.
  AdjacencyCacheOptions opts;
  opts.max_bytes = 4096;
  AdjacencyCache small(opts);
  for (RecordId n = 1; n <= 64; ++n) {
    std::vector<CachedNeighbor> edges(10);
    small.Insert(n, AdjDir::kOut, /*stamp=*/1, std::move(edges));
  }
  auto st = small.stats();
  EXPECT_GT(st.evictions, 0u);
  EXPECT_LE(st.bytes, opts.max_bytes);
  EXPECT_EQ(st.inserts, 64u);
  EXPECT_EQ(st.entries, st.inserts - st.evictions);
  EXPECT_GT(st.entries, 0u);  // eviction trims to budget, never to empty
  // A fresh insert after heavy eviction is still immediately servable.
  small.Insert(100, AdjDir::kOut, /*stamp=*/1, {});
  EXPECT_NE(small.Lookup(100, AdjDir::kOut, 1), nullptr);
}

TEST_F(AdjacencyCacheTest, StaleStampLookupSelfHeals) {
  AdjacencyCache c;
  c.Insert(7, AdjDir::kOut, /*stamp=*/5, {});
  EXPECT_EQ(c.Lookup(7, AdjDir::kOut, /*stamp=*/9), nullptr);  // stale: erased
  EXPECT_EQ(c.stats().entries, 0u);
  // Restamp only applies when the entry still reflects old_stamp.
  c.Insert(7, AdjDir::kOut, 5, {});
  c.Restamp(7, /*old_stamp=*/4, /*new_stamp=*/9);  // mismatch: no-op
  EXPECT_NE(c.Lookup(7, AdjDir::kOut, 5), nullptr);
  c.Restamp(7, 5, 9);
  EXPECT_NE(c.Lookup(7, AdjDir::kOut, 9), nullptr);
}

// --- Interpreter Expand over mutating topology ----------------------------

TEST_F(AdjacencyCacheTest, ExpandLabelFilterAcrossConcurrentDeletion) {
  // p0 -knows-> p1(Person), p0 -knows-> c(City). Expand with a Person node
  // filter returns p1 only. A reader whose snapshot predates the deletion of
  // p1 keeps seeing it (served or chain-walked); post-deletion snapshots see
  // an empty result, exercising the interpreter's deleted-neighbor skip.
  query::QueryEngine engine(store_.get(), indexes_.get(), 2);
  RecordId p0 = MakeNode(person_);
  RecordId p1 = MakeNode(person_);
  RecordId c = MakeNode(city_);
  RecordId rel_p = Link(p0, p1, knows_);
  Link(p0, c, knows_);

  query::Plan plan = query::PlanBuilder()
                         .NodeScan(person_)
                         .FilterRecordId(
                             0, query::Expr::Literal(query::Value::Int(
                                    static_cast<int64_t>(p0))))
                         .Expand(0, query::Direction::kOut, knows_, person_)
                         .Count()
                         .Build();

  auto count_in = [&](Transaction* tx) {
    auto r = engine.Execute(plan, tx, {}, false);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->rows[0][0].AsInt();
  };

  {
    auto tx = mgr_->Begin();
    EXPECT_EQ(count_in(tx.get()), 1);  // p1 yes, city filtered out
    ASSERT_TRUE(tx->Commit().ok());
  }

  auto old_reader = mgr_->Begin();
  {
    auto del = mgr_->Begin();  // concurrent deletion of the p1 edge + node
    ASSERT_TRUE(del->DeleteRelationship(rel_p).ok());
    ASSERT_TRUE(del->DeleteNode(p1).ok());
    ASSERT_TRUE(del->Commit().ok());
  }
  EXPECT_EQ(count_in(old_reader.get()), 1);  // snapshot predates the delete
  ASSERT_TRUE(old_reader->Commit().ok());

  auto tx = mgr_->Begin();
  EXPECT_EQ(count_in(tx.get()), 0);
  ASSERT_TRUE(tx->Commit().ok());
}

// --- Races: concurrent builds, invalidations and readers (TSAN food) ------

TEST_F(AdjacencyCacheTest, ConcurrentMutatorsAndCachedReadersStayCoherent) {
  constexpr int kHubs = 4;
  constexpr int kIters = 150;
  std::vector<RecordId> hubs, spokes;
  for (int i = 0; i < kHubs; ++i) hubs.push_back(MakeNode(person_));
  for (int i = 0; i < 16; ++i) spokes.push_back(MakeNode(person_));
  for (int i = 0; i < kHubs; ++i) Link(hubs[i], spokes[i], knows_);

  std::atomic<uint64_t> commits{0}, aborts{0};
  auto writer = [&](int seed) {
    Rng rng(seed);
    for (int i = 0; i < kIters; ++i) {
      RecordId hub = hubs[rng.Uniform(kHubs)];
      RecordId spoke = spokes[rng.Uniform(spokes.size())];
      auto tx = mgr_->Begin();
      auto rel = tx->CreateRelationship(hub, spoke, likes_, {});
      if (!rel.ok() || !tx->Commit().ok()) {
        aborts.fetch_add(1);
        continue;
      }
      commits.fetch_add(1);
      auto tx2 = mgr_->Begin();
      if (tx2->DeleteRelationship(*rel).ok() && tx2->Commit().ok()) {
        commits.fetch_add(1);
      } else {
        aborts.fetch_add(1);
      }
    }
  };
  auto reader = [&](int seed) {
    Rng rng(seed);
    for (int i = 0; i < kIters; ++i) {
      RecordId hub = hubs[rng.Uniform(kHubs)];
      auto tx = mgr_->Begin();
      // Cached and chain walks inside one snapshot must agree whenever both
      // succeed; aborts (foreign write locks) are legitimate outcomes.
      std::vector<Triple> cached, chain;
      auto cs = tx->ForEachNeighbor(hub, AdjDir::kOut,
                                    [&](RecordId r, DictCode l, RecordId n) {
                                      cached.emplace_back(r, l, n);
                                      return true;
                                    });
      if (!cs.ok()) {
        tx->Abort();
        continue;
      }
      auto ws = tx->ForEachOutgoing(
          hub, [&](RecordId r, const storage::RelationshipRecord& rec) {
            chain.emplace_back(r, rec.label, rec.dst);
            return true;
          });
      if (ws.ok()) {
        EXPECT_EQ(cached, chain) << "hub " << hub;
        // Served topology is real: every rel resolves with matching
        // endpoints in this same snapshot.
        for (auto& [rel, label, neighbor] : cached) {
          auto rr = tx->GetRelationship(rel);
          if (!rr.ok()) continue;  // foreign lock; visibility already checked
          EXPECT_EQ(rr->rec.src, hub);
          EXPECT_EQ(rr->rec.dst, neighbor);
        }
      }
      tx->Abort();
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(writer, 1);
  threads.emplace_back(writer, 2);
  threads.emplace_back(reader, 3);
  threads.emplace_back(reader, 4);
  for (auto& t : threads) t.join();
  EXPECT_GT(commits.load(), 0u);
}

}  // namespace
}  // namespace poseidon::tx
