// Overload governance end-to-end (ISSUE: cooperative deadlines, admission
// control, graceful pool-space exhaustion):
//
//   * A deliberately long multi-hop traversal is cancelled within 2x its
//     deadline in all four execution modes (including compiled code, which
//     polls poseidon_should_yield from its generated loops), returning
//     kDeadlineExceeded with the transaction cleanly aborted.
//   * Explicit GraphDb::Cancel from another thread aborts with kCancelled.
//   * The writer admission gate sheds with ResourceExhausted once
//     max_writers are in flight, and re-admits when a slot frees.
//   * The pool's soft space watermark denies new writers (after emergency
//     GC) while leaving reads and in-flight commits untouched.
//   * A pmem.alloc fault sweep over a mixed insert/update workload: every
//     injected allocation failure unwinds the transaction atomically
//     (ResourceExhausted, no leaked records, pool reopenable, zero PSAN
//     violations).
//   * An abort storm returns every allocation to the free lists (allocator
//     accounting is stable across storm rounds).

#include "core/graph_db.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "pmem/psan.h"
#include "util/fault.h"

namespace poseidon::core {
namespace {

using query::Expr;
using query::Plan;
using query::PlanBuilder;
using query::Value;
using storage::PVal;
using util::FaultRegistry;

GraphDbOptions FastOptions(const std::string& path) {
  GraphDbOptions o;
  o.path = path;
  o.capacity = 512ull << 20;
  o.has_latency_override = true;
  o.latency_override = pmem::LatencyModel::Dram();
  o.query_threads = 2;
  return o;
}

class OverloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/overload_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".pmem";
    std::filesystem::remove(path_);
    FaultRegistry::Instance().Reset();
  }
  void TearDown() override {
    FaultRegistry::Instance().Reset();
    std::filesystem::remove(path_);
  }

  std::string path_;
};

/// Dense SNB-style social graph: every person knows 8 others, so an h-hop
/// expansion fans out 8^h ways — deliberately far too much work to finish
/// under the deadlines below in any execution mode.
void LoadDenseKnowsGraph(GraphDb* db, int persons) {
  auto person = *db->Code("Person");
  auto knows = *db->Code("knows");
  auto id_key = *db->Code("id");
  std::vector<storage::RecordId> ids;
  ids.reserve(persons);
  {
    auto tx = db->Begin();
    for (int i = 0; i < persons; ++i) {
      ids.push_back(*tx->CreateNode(person, {{id_key, PVal::Int(i)}}));
    }
    Status commit = tx->Commit();
    ASSERT_TRUE(commit.ok()) << commit.ToString();
  }
  // Edges land in batched commits: one giant commit would overflow a redo
  // segment (this test is about query-time governance, not commit sizing).
  const int chords[] = {1, 3, 7, 13, 31, 61, 127, 251};
  constexpr int kBatch = 200;
  for (int base = 0; base < persons; base += kBatch) {
    auto tx = db->Begin();
    for (int i = base; i < std::min(base + kBatch, persons); ++i) {
      for (int c : chords) {
        ASSERT_TRUE(
            tx->CreateRelationship(ids[i], ids[(i + c) % persons], knows, {})
                .ok());
      }
    }
    Status commit = tx->Commit();
    ASSERT_TRUE(commit.ok()) << commit.ToString();
  }
}

Plan DeepExpandPlan(GraphDb* db, int hops) {
  auto person = *db->Code("Person");
  auto knows = *db->Code("knows");
  PlanBuilder b = PlanBuilder().NodeScan(person);
  for (int h = 0; h < hops; ++h) {
    // Each Expand appends [rel, node]: hop h expands the node at column 2h.
    b = std::move(b).Expand(2 * h, query::Direction::kOut, knows);
  }
  return std::move(b).Count().Build();
}

TEST_F(OverloadTest, DeadlineCancelsLongTraversalInAllModes) {
  auto db_or = GraphDb::Create(FastOptions(path_));
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  GraphDb* db = db_or->get();
  LoadDenseKnowsGraph(db, 1200);
  Plan p = DeepExpandPlan(db, 5);  // ~1200 * 8^5 output rows: minutes of work

  constexpr int64_t kDeadlineMs = 300;
  const jit::ExecutionMode modes[] = {
      jit::ExecutionMode::kInterpret, jit::ExecutionMode::kInterpretParallel,
      jit::ExecutionMode::kJit, jit::ExecutionMode::kAdaptive};
  for (jit::ExecutionMode mode : modes) {
    // Warm-up run (unmeasured): absorbs the one-time LLVM compile cost for
    // kJit/kAdaptive so the measured run hits the in-memory memo and the 2x
    // bound reflects poll latency, not compile latency. The warm-up itself
    // is cut short by the same deadline.
    (void)db->Execute(p, mode, {}, nullptr, kDeadlineMs);
    db->engine()->WaitForBackgroundCompiles();

    uint64_t deadline_aborts_before = db->Health().aborts_deadline;
    jit::ExecStats stats;
    auto start = std::chrono::steady_clock::now();
    auto r = db->Execute(p, mode, {}, &stats, kDeadlineMs);
    auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    ASSERT_FALSE(r.ok()) << "mode=" << static_cast<int>(mode)
                         << " finished a 3M+-row traversal under a "
                         << kDeadlineMs << "ms deadline?";
    EXPECT_TRUE(r.status().IsDeadlineExceeded())
        << "mode=" << static_cast<int>(mode) << ": "
        << r.status().ToString();
    EXPECT_LE(elapsed_ms, 2 * kDeadlineMs)
        << "mode=" << static_cast<int>(mode)
        << " took more than 2x its deadline to notice cancellation";
    EXPECT_TRUE(stats.deadline_exceeded);
    EXPECT_FALSE(stats.cancelled);
    // The transaction was aborted and classified (taxonomy in Health()).
    EXPECT_GT(db->Health().aborts_deadline, deadline_aborts_before)
        << "mode=" << static_cast<int>(mode);
  }
  // The engine stays fully usable: the same plan over a small fraction of
  // the graph (1 hop) completes normally.
  auto ok = db->Execute(DeepExpandPlan(db, 1), jit::ExecutionMode::kInterpret);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->rows[0][0].AsInt(), 1200 * 8);
}

TEST_F(OverloadTest, ExplicitCancelFromAnotherThread) {
  auto db_or = GraphDb::Create(FastOptions(path_));
  ASSERT_TRUE(db_or.ok());
  GraphDb* db = db_or->get();
  LoadDenseKnowsGraph(db, 1200);
  Plan p = DeepExpandPlan(db, 5);

  auto tx = db->Begin();
  Status result;
  std::thread worker([&] {
    auto r = db->ExecuteIn(p, tx.get(), {}, jit::ExecutionMode::kInterpret);
    result = r.status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  GraphDb::Cancel(tx.get());
  worker.join();
  EXPECT_TRUE(result.IsCancelled()) << result.ToString();
  tx->RecordAbortCause(result);
  tx->Abort();
  EXPECT_GE(db->Health().aborts_cancelled, 1u);
}

TEST_F(OverloadTest, AdmissionGateShedsExcessWriters) {
  auto db_or = GraphDb::Create(FastOptions(path_));
  ASSERT_TRUE(db_or.ok());
  GraphDb* db = db_or->get();
  db->txm()->set_max_writers(1);

  auto first = db->BeginWrite();
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // One writer in flight at cap 1: the next admission waits out the bounded
  // backoff (sub-millisecond by default) and sheds.
  auto second = db->BeginWrite();
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsResourceExhausted())
      << second.status().ToString();
  EXPECT_GE(db->Health().writers_shed, 1u);
  EXPECT_EQ(db->Health().max_writers, 1);

  // Reads are never gated.
  auto reader = db->BeginReadOnly();
  ASSERT_NE(reader, nullptr);

  // Retiring the writer frees the slot; admission succeeds again.
  ASSERT_TRUE((*first)->Commit().ok());
  auto third = db->BeginWrite();
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  (*third)->Abort();
  db->txm()->set_max_writers(0);
}

TEST_F(OverloadTest, SoftWatermarkDeniesWritersButNotReaders) {
  auto options = FastOptions(path_);
  options.capacity = 32ull << 20;  // small pool: data moves the needle
  auto db_or = GraphDb::Create(options);
  ASSERT_TRUE(db_or.ok());
  GraphDb* db = db_or->get();
  auto n_label = *db->Code("N");
  auto v_key = *db->Code("v");
  {
    auto tx = db->Begin();
    for (int i = 0; i < 5000; ++i) {
      ASSERT_TRUE(tx->CreateNode(n_label, {{v_key, PVal::Int(i)}}).ok());
    }
    ASSERT_TRUE(tx->Commit().ok());
  }
  // Pick the largest threshold the current usage already exceeds, so the
  // gate trips deterministically regardless of table geometry.
  uint32_t pct = static_cast<uint32_t>(db->pool()->bytes_used() * 100 /
                                       db->pool()->capacity());
  ASSERT_GE(pct, 1u) << "dataset too small to cross 1% of the pool";
  db->pool()->set_soft_watermark_pct(pct);
  ASSERT_TRUE(db->pool()->AboveSoftWatermark())
      << "usage " << db->pool()->bytes_used() << " of "
      << db->pool()->capacity();

  auto denied = db->BeginWrite();
  ASSERT_FALSE(denied.ok());
  EXPECT_TRUE(denied.status().IsResourceExhausted())
      << denied.status().ToString();
  EXPECT_GE(db->Health().space_denied, 1u);
  EXPECT_TRUE(db->Health().above_soft_watermark);

  // Reads still work above the watermark.
  auto reader = db->BeginReadOnly();
  auto got = reader->GetNode(0);
  EXPECT_TRUE(got.ok());

  db->pool()->set_soft_watermark_pct(0);
  auto admitted = db->BeginWrite();
  ASSERT_TRUE(admitted.ok());
  (*admitted)->Abort();
}

TEST_F(OverloadTest, AllocFaultSweepUnwindsCleanly) {
  storage::DictCode label, key;
  uint64_t committed_nodes = 0;
  {
    auto db_or = GraphDb::Create(FastOptions(path_));
    ASSERT_TRUE(db_or.ok());
    GraphDb* db = db_or->get();
    label = *db->Code("Item");
    key = *db->Code("v");
    auto key2 = *db->Code("w");  // interned up front: dictionary growth
                                 // must not absorb the injected fault
    // Base data for the update half of the workload.
    {
      auto tx = db->Begin();
      for (int i = 0; i < 64; ++i) {
        ASSERT_TRUE(tx->CreateNode(label, {{key, PVal::Int(i)}}).ok());
      }
      ASSERT_TRUE(tx->Commit().ok());
      committed_nodes = 64;
    }

    // Sweep the fault point across the whole commit path: the k-th pool
    // allocation of each mixed insert/update transaction fails. Whatever
    // breaks must unwind atomically: ResourceExhausted (never a crash or a
    // partial commit), live-record accounting restored, taxonomy bumped.
    for (uint64_t k = 1; k <= 40; ++k) {
      uint64_t nodes_before = db->store()->nodes().size();
      uint64_t props_before = db->store()->properties().table()->size();
      uint64_t space_aborts_before = db->Health().aborts_space;

      FaultRegistry::Instance().Arm("pmem.alloc", /*after=*/k, /*times=*/1);
      auto tx = db->Begin();
      Status s;
      for (int i = 0; i < 10 && s.ok(); ++i) {
        s = tx->CreateNode(label, {{key, PVal::Int(1000 + i)},
                                   {key2, PVal::Int(i)}})
                .status();
      }
      for (int i = 0; i < 5 && s.ok(); ++i) {
        s = tx->SetNodeProperty(static_cast<storage::RecordId>(i), key,
                                PVal::Int(-1));
      }
      if (s.ok()) s = tx->Commit();
      bool fired = FaultRegistry::Instance().fired("pmem.alloc");
      FaultRegistry::Instance().Reset();

      if (s.ok()) {
        ASSERT_FALSE(fired) << "k=" << k
                            << ": injected failure but commit succeeded";
        committed_nodes += 10;
        continue;
      }
      ASSERT_TRUE(fired) << "k=" << k << ": " << s.ToString();
      EXPECT_TRUE(s.IsResourceExhausted()) << "k=" << k << ": "
                                           << s.ToString();
      tx->RecordAbortCause(s);
      tx->Abort();
      tx.reset();  // retire before accounting: Finish() runs inline GC
      EXPECT_GT(db->Health().aborts_space, space_aborts_before) << "k=" << k;
      EXPECT_EQ(db->store()->nodes().size(), nodes_before)
          << "k=" << k << ": aborted insert leaked node records";
      EXPECT_EQ(db->store()->properties().table()->size(), props_before)
          << "k=" << k << ": aborted commit leaked property records";

      // The engine stays writable after every injected failure.
      auto retry = db->Begin();
      ASSERT_TRUE(retry->CreateNode(label, {{key, PVal::Int(7)}}).ok());
      ASSERT_TRUE(retry->Commit().ok());
      ++committed_nodes;
    }
    EXPECT_EQ(pmem::PsanTotalViolations(), 0u);
  }
  // The pool reopens cleanly after the whole sweep and sees exactly the
  // committed state.
  auto db = GraphDb::Open(FastOptions(path_));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->store()->nodes().size(), committed_nodes);
  EXPECT_EQ(pmem::PsanTotalViolations(), 0u);
}

TEST_F(OverloadTest, AbortStormReturnsAllocationsToFreeLists) {
  auto db_or = GraphDb::Create(FastOptions(path_));
  ASSERT_TRUE(db_or.ok());
  GraphDb* db = db_or->get();
  auto label = *db->Code("Tmp");
  auto key = *db->Code("v");

  auto storm_round = [&] {
    for (int t = 0; t < 10; ++t) {
      auto tx = db->Begin();
      for (int i = 0; i < 20; ++i) {
        ASSERT_TRUE(
            tx->CreateNode(label, {{key, PVal::Int(i)}}).ok());
      }
      tx->Abort();
    }
  };

  // Warm-up round: lets the chunked tables grow whatever capacity the storm
  // working set needs (chunk growth is capacity, not a leak).
  storm_round();
  uint64_t nodes_after_warmup = db->store()->nodes().size();
  uint64_t props_after_warmup = db->store()->properties().table()->size();
  uint64_t bytes_after_warmup = db->pool()->bytes_used();

  for (int round = 0; round < 20; ++round) storm_round();

  // Every allocation the aborted transactions made came back to the free
  // lists: live-record counts are flat and the bump pointer never moved
  // again (all storm rounds were served from recycled slots).
  EXPECT_EQ(db->store()->nodes().size(), nodes_after_warmup);
  EXPECT_EQ(db->store()->properties().table()->size(), props_after_warmup);
  EXPECT_EQ(db->pool()->bytes_used(), bytes_after_warmup)
      << "abort storm grew the pool: allocations leaked past the free lists";
}

TEST_F(OverloadTest, ExplainRendersOverloadBlock) {
  auto db_or = GraphDb::Create(FastOptions(path_));
  ASSERT_TRUE(db_or.ok());
  GraphDb* db = db_or->get();
  auto n_label = *db->Code("N");
  Plan p = PlanBuilder().NodeScan(n_label).Count().Build();

  // Off by default: no overload block.
  EXPECT_EQ(db->Explain(p).find("deadline="), std::string::npos);

  db->txm()->set_default_deadline_ms(250);
  db->txm()->set_max_writers(8);
  std::string out = db->Explain(p);
  EXPECT_NE(out.find("deadline=250ms"), std::string::npos) << out;
  EXPECT_NE(out.find("writers=0/8"), std::string::npos) << out;
  EXPECT_NE(out.find("aborts="), std::string::npos) << out;
  db->txm()->set_default_deadline_ms(0);
  db->txm()->set_max_writers(0);
}

TEST_F(OverloadTest, PoolExhaustionErrorCarriesSizes) {
  // The detailed message (requested size/alignment, remaining bytes) is the
  // satellite fix for the bare "pool exhausted" error.
  FaultRegistry::Instance().Arm("pmem.alloc", 1, 1);
  auto db_or = GraphDb::Create(FastOptions(path_));
  // Create itself allocates: whichever layer hit the fault must surface the
  // annotated message.
  if (!db_or.ok()) {
    EXPECT_NE(db_or.status().ToString().find("pmem.alloc"),
              std::string::npos);
    FaultRegistry::Instance().Reset();
    return;
  }
  FaultRegistry::Instance().Reset();
  GraphDb* db = db_or->get();
  auto tx = db->Begin();
  FaultRegistry::Instance().Arm("pmem.alloc", 1, 1);
  auto r = tx->CreateNode(*db->Code("N"), {});
  FaultRegistry::Instance().Reset();
  if (!r.ok()) {
    EXPECT_TRUE(r.status().IsResourceExhausted());
    EXPECT_NE(r.status().ToString().find("requested"), std::string::npos)
        << r.status().ToString();
  }
  tx->Abort();
}

}  // namespace
}  // namespace poseidon::core
