#include "analytics/algorithms.h"

#include <gtest/gtest.h>

#include <numeric>

namespace poseidon::analytics {
namespace {

using storage::DictCode;
using storage::PVal;
using storage::RecordId;

class AnalyticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pool = pmem::Pool::CreateVolatile(256ull << 20);
    ASSERT_TRUE(pool.ok());
    pool_ = std::move(*pool);
    auto store = storage::GraphStore::Create(pool_.get());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    mgr_ = std::make_unique<tx::TransactionManager>(store_.get(), nullptr);
    node_ = *store_->Code("Node");
    edge_ = *store_->Code("edge");
    other_ = *store_->Code("other");
  }

  /// Builds nodes 0..n-1 and the given directed edges.
  std::vector<RecordId> BuildGraph(
      int n, const std::vector<std::pair<int, int>>& edges,
      DictCode rel_label = storage::kInvalidCode) {
    if (rel_label == storage::kInvalidCode) rel_label = edge_;
    std::vector<RecordId> ids;
    auto tx = mgr_->Begin();
    for (int i = 0; i < n; ++i) ids.push_back(*tx->CreateNode(node_, {}));
    for (auto [a, b] : edges) {
      EXPECT_TRUE(
          tx->CreateRelationship(ids[a], ids[b], rel_label, {}).ok());
    }
    EXPECT_TRUE(tx->Commit().ok());
    return ids;
  }

  GraphSnapshot Snap(const SnapshotOptions& options = {}) {
    auto tx = mgr_->Begin();
    auto snap = GraphSnapshot::Build(tx.get(), store_.get(), options);
    EXPECT_TRUE(snap.ok()) << snap.status().ToString();
    EXPECT_TRUE(tx->Commit().ok());
    return std::move(*snap);
  }

  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<storage::GraphStore> store_;
  std::unique_ptr<tx::TransactionManager> mgr_;
  DictCode node_, edge_, other_;
};

TEST_F(AnalyticsTest, SnapshotCountsMatch) {
  BuildGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  GraphSnapshot g = Snap();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  for (uint32_t v = 0; v < 4; ++v) {
    EXPECT_EQ(g.OutDegree(v), 1u);
    EXPECT_EQ(g.VertexOf(g.RecordOf(v)), v);
  }
}

TEST_F(AnalyticsTest, SnapshotFiltersRelLabel) {
  auto ids = BuildGraph(3, {{0, 1}});
  {
    auto tx = mgr_->Begin();
    ASSERT_TRUE(tx->CreateRelationship(ids[1], ids[2], other_, {}).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  SnapshotOptions options;
  options.rel_label = edge_;
  GraphSnapshot g = Snap(options);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST_F(AnalyticsTest, SnapshotIsTransactionConsistent) {
  BuildGraph(2, {{0, 1}});
  auto old_tx = mgr_->Begin();
  // New data committed after the snapshot transaction began is invisible.
  BuildGraph(2, {{0, 1}});
  auto snap = GraphSnapshot::Build(old_tx.get(), store_.get(), {});
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->num_vertices(), 2u);
  EXPECT_EQ(snap->num_edges(), 1u);
  ASSERT_TRUE(old_tx->Commit().ok());
}

TEST_F(AnalyticsTest, BfsDistances) {
  // 0 -> 1 -> 2 -> 3, plus a shortcut 0 -> 2 and an unreachable island 4.
  BuildGraph(5, {{0, 1}, {1, 2}, {2, 3}, {0, 2}});
  GraphSnapshot g = Snap();
  auto dist = Bfs(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 1u);
  EXPECT_EQ(dist[3], 2u);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST_F(AnalyticsTest, BfsInvalidSource) {
  BuildGraph(2, {{0, 1}});
  GraphSnapshot g = Snap();
  auto dist = Bfs(g, 99);
  EXPECT_EQ(dist[0], kUnreachable);
  EXPECT_EQ(dist[1], kUnreachable);
}

TEST_F(AnalyticsTest, PageRankSumsToOneAndRanksHubs) {
  // Star: everyone points at vertex 0.
  BuildGraph(6, {{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}});
  GraphSnapshot g = Snap();
  auto pr = PageRank(g, 30);
  double sum = std::accumulate(pr.begin(), pr.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (uint32_t v = 1; v < 6; ++v) {
    EXPECT_GT(pr[0], pr[v]) << "hub must outrank spokes";
  }
}

TEST_F(AnalyticsTest, PageRankHandlesDanglingNodes) {
  BuildGraph(3, {{0, 1}});  // 1 and 2 are dangling
  GraphSnapshot g = Snap();
  auto pr = PageRank(g, 20);
  double sum = std::accumulate(pr.begin(), pr.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(AnalyticsTest, WeaklyConnectedComponents) {
  // Two components: {0,1,2} (directed chain) and {3,4}.
  BuildGraph(5, {{0, 1}, {2, 1}, {3, 4}});
  GraphSnapshot g = Snap();
  uint32_t n = 0;
  auto comp = WeaklyConnectedComponents(g, &n);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST_F(AnalyticsTest, TriangleCount) {
  // One triangle 0-1-2 (mixed directions) + a pendant edge.
  BuildGraph(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  GraphSnapshot g = Snap();
  EXPECT_EQ(CountTriangles(g), 1u);
}

TEST_F(AnalyticsTest, TriangleCountIgnoresDuplicatesAndLoops) {
  BuildGraph(3, {{0, 1}, {1, 0}, {1, 2}, {2, 0}, {0, 0}});
  GraphSnapshot g = Snap();
  EXPECT_EQ(CountTriangles(g), 1u);
}

TEST_F(AnalyticsTest, DegreeHistogram) {
  BuildGraph(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}});
  GraphSnapshot g = Snap();
  auto hist = DegreeHistogram(g, 8);
  EXPECT_EQ(hist[0], 2u);  // vertices 2 and 3
  EXPECT_EQ(hist[1], 1u);  // vertex 1
  EXPECT_EQ(hist[3], 1u);  // vertex 0
}

TEST_F(AnalyticsTest, IncomingAdjacency) {
  BuildGraph(3, {{0, 2}, {1, 2}});
  SnapshotOptions options;
  options.with_incoming = true;
  GraphSnapshot g = Snap(options);
  ASSERT_TRUE(g.has_incoming());
  EXPECT_EQ(g.InEnd(2) - g.InBegin(2), 2);
  EXPECT_EQ(g.InEnd(0) - g.InBegin(0), 0);
}

TEST_F(AnalyticsTest, HtapSnapshotUnaffectedByConcurrentCommits) {
  auto ids = BuildGraph(3, {{0, 1}, {1, 2}});
  auto tx = mgr_->Begin();
  auto snap = GraphSnapshot::Build(tx.get(), store_.get(), {});
  ASSERT_TRUE(snap.ok());
  // Concurrent update workload commits while analytics run.
  {
    auto w = mgr_->Begin();
    ASSERT_TRUE(w->CreateRelationship(ids[2], ids[0], edge_, {}).ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto dist = Bfs(*snap, 0);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(snap->num_edges(), 2u) << "snapshot stays immutable";
  ASSERT_TRUE(tx->Commit().ok());
}

}  // namespace
}  // namespace poseidon::analytics
