// Persist-order sanitizer (PSAN) tests: seeded durability bugs must be
// detected, clean workloads must report zero violations, and the runtime
// knob must disable tracking without a rebuild.
//
// Every test skips when the build does not define POSEIDON_PSAN — the suite
// carries the "psan" ctest label and is exercised by run_benches.sh --check
// against a -DPOSEIDON_PSAN=ON build.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "pmem/pptr.h"

namespace poseidon::pmem {
namespace {

class PsanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!PsanCompiledIn()) {
      GTEST_SKIP() << "build without -DPOSEIDON_PSAN=ON";
    }
  }

  // Two allocations far enough apart that slot and pointee never share a
  // cache line (OnFlushLine exempts a publish's own line from its dep check).
  static Result<std::unique_ptr<Pool>> MakePool() {
    return Pool::CreateVolatile(32ull << 20);
  }
};

// --- Clean paths ----------------------------------------------------------

TEST_F(PsanTest, DisciplinedStoreFlushDrainIsClean) {
  auto pool_r = MakePool();
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  ASSERT_NE(pool->psan(), nullptr);

  auto a = pool->AllocateZeroed(256);
  ASSERT_TRUE(a.ok());
  auto* p = pool->ToPtr<uint64_t>(*a);
  PsanStore(pool, p, uint64_t{41});
  pool->Persist(p, sizeof(uint64_t));  // flush + drain: DIRTY -> DURABLE

  // Publish after the pointee is durable: the textbook ordering.
  auto slot_off = pool->AllocateZeroed(64);
  ASSERT_TRUE(slot_off.ok());
  auto* slot = pool->ToPtr<uint64_t>(*slot_off);
  PsanPublish(pool, slot, *a, *a, sizeof(uint64_t));
  pool->Persist(slot, sizeof(uint64_t));

  PsanReport report = pool->psan()->Snapshot();
  EXPECT_EQ(report.total_violations(), 0u);
  EXPECT_EQ(report.unflushed_at_boundary, 0u);
  EXPECT_EQ(report.fence_before_data, 0u);
}

TEST_F(PsanTest, RedoCommitOfStagedEntriesIsClean) {
  auto pool_r = MakePool();
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  auto a = pool->AllocateZeroed(1024);
  ASSERT_TRUE(a.ok());

  // The real commit path: staged entries, marker publish, apply, clear.
  for (uint64_t i = 0; i < 8; ++i) {
    RedoTx tx(pool->redo_log());
    uint64_t v = 0x1000 + i;
    tx.Stage(*a + i * 64, &v, sizeof(v));
    tx.StageValue(*a + 512 + i * 8, v);
    ASSERT_TRUE(tx.Commit(/*commit_ts=*/i + 1).ok());
  }

  PsanReport report = pool->psan()->Snapshot();
  EXPECT_EQ(report.total_violations(), 0u)
      << "commit pipeline violated its own persist ordering";
}

// --- Seeded bug (a): unflushed store at a commit boundary -----------------

TEST_F(PsanTest, DetectsUnflushedStoreAtCommitBoundary) {
  auto pool_r = MakePool();
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  auto a = pool->AllocateZeroed(256);
  ASSERT_TRUE(a.ok());
  auto* p = pool->ToPtr<uint64_t>(*a);

  // Seeded bug: store, never flush, then finish a redo commit on this
  // thread. The commit boundary promises everything this transaction wrote
  // is durable — the stray store is not.
  PsanStore(pool, p, uint64_t{7});
  {
    RedoTx tx(pool->redo_log());
    uint64_t v = 9;
    tx.Stage(*a + 128, &v, sizeof(v));
    ASSERT_TRUE(tx.Commit(1).ok());
  }

  PsanReport report = pool->psan()->Snapshot();
  EXPECT_EQ(report.unflushed_at_boundary, 1u);
  ASSERT_FALSE(report.violations.empty());
  const PsanViolation& v = report.violations.front();
  EXPECT_EQ(v.kind, PsanViolationKind::kUnflushedAtBoundary);
  EXPECT_NE(v.site.find("psan_test.cc"), std::string::npos)
      << "violation should blame the storing call site, got: " << v.site;
}

TEST_F(PsanTest, CommitBoundaryReportsOnceThenForgets) {
  auto pool_r = MakePool();
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  auto a = pool->AllocateZeroed(256);
  ASSERT_TRUE(a.ok());
  PsanStore(pool, pool->ToPtr<uint64_t>(*a), uint64_t{7});

  for (uint64_t ts = 1; ts <= 3; ++ts) {
    RedoTx tx(pool->redo_log());
    uint64_t v = ts;
    tx.Stage(*a + 128, &v, sizeof(v));
    ASSERT_TRUE(tx.Commit(ts).ok());
  }
  // One stray store, three commits: the violation is reported exactly once.
  EXPECT_EQ(pool->psan()->Snapshot().unflushed_at_boundary, 1u);
}

// --- Seeded bug (a'): unflushed store at pool close -----------------------

TEST_F(PsanTest, DetectsUnflushedStoreAtPoolClose) {
  uint64_t before = PsanTotalViolations();
  {
    auto pool_r = MakePool();
    ASSERT_TRUE(pool_r.ok());
    Pool* pool = pool_r->get();
    auto a = pool->AllocateZeroed(256);
    ASSERT_TRUE(a.ok());
    // Seeded bug: the store is still sitting in the (modeled) cache when
    // the pool unmaps.
    PsanStore(pool, pool->ToPtr<uint64_t>(*a), uint64_t{13});
  }
  // The pool is gone; the process-wide counter keeps the finding.
  EXPECT_EQ(PsanTotalViolations(), before + 1);
}

// --- Seeded bug (b): redundant flush --------------------------------------

TEST_F(PsanTest, CountsRedundantFlushes) {
  auto pool_r = MakePool();
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  auto a = pool->AllocateZeroed(256);
  ASSERT_TRUE(a.ok());
  auto* p = pool->ToPtr<uint64_t>(*a);

  PsanStore(pool, p, uint64_t{1});
  pool->Persist(p, sizeof(uint64_t));  // line is now DURABLE
  uint64_t base = pool->stats().psan_redundant_lines.load();

  // Seeded bug: flushing again with no store since pays clwb latency for
  // nothing. Diagnostic counter only — not a hard violation.
  pool->Flush(p, sizeof(uint64_t));
  EXPECT_EQ(pool->stats().psan_redundant_lines.load(), base + 1);
  EXPECT_GE(pool->psan()->Snapshot().redundant_flush_lines, base + 1);
  EXPECT_EQ(pool->psan()->Snapshot().total_violations(), 0u);

  // A fresh store makes the next flush useful again.
  pool->Drain();
  PsanStore(pool, p, uint64_t{2});
  pool->Flush(p, sizeof(uint64_t));
  EXPECT_EQ(pool->stats().psan_redundant_lines.load(), base + 1);
}

// --- Seeded bug (c): pointer flushed before its pointee -------------------

TEST_F(PsanTest, DetectsFenceBeforeData) {
  auto pool_r = MakePool();
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();

  auto data_off = pool->AllocateZeroed(256, kCacheLineSize);
  auto slot_off = pool->AllocateZeroed(64, kCacheLineSize);
  ASSERT_TRUE(data_off.ok());
  ASSERT_TRUE(slot_off.ok());
  auto* data = pool->ToPtr<uint64_t>(*data_off);
  auto* slot = pool->ToPtr<uint64_t>(*slot_off);

  // Seeded bug: publish the pointer and flush its line while the pointee is
  // still dirty. A crash between the two flushes leaves a durable pointer
  // to garbage.
  PsanStore(pool, data, uint64_t{0xfeed});
  PsanPublish(pool, slot, *data_off, *data_off, sizeof(uint64_t));
  pool->Flush(slot, sizeof(uint64_t));

  PsanReport report = pool->psan()->Snapshot();
  EXPECT_EQ(report.fence_before_data, 1u);
  ASSERT_FALSE(report.violations.empty());
  const PsanViolation& v = report.violations.front();
  EXPECT_EQ(v.kind, PsanViolationKind::kFenceBeforeData);
  EXPECT_NE(v.site.find("psan_test.cc"), std::string::npos) << v.site;
}

TEST_F(PsanTest, FlushingPointeeSatisfiesFenceCheck) {
  auto pool_r = MakePool();
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  auto data_off = pool->AllocateZeroed(256, kCacheLineSize);
  auto slot_off = pool->AllocateZeroed(64, kCacheLineSize);
  ASSERT_TRUE(data_off.ok());
  ASSERT_TRUE(slot_off.ok());
  auto* data = pool->ToPtr<uint64_t>(*data_off);
  auto* slot = pool->ToPtr<uint64_t>(*slot_off);

  // Flushed-but-not-drained pointee is acceptable: in this crash model
  // flushed bytes are durable; drains only order (see Pool::FlushAccounted).
  PsanStore(pool, data, uint64_t{0xfeed});
  pool->Flush(data, sizeof(uint64_t));
  PsanPublish(pool, slot, *data_off, *data_off, sizeof(uint64_t));
  pool->Flush(slot, sizeof(uint64_t));
  pool->Drain();

  EXPECT_EQ(pool->psan()->Snapshot().fence_before_data, 0u);
}

// --- Crash simulation resets tracking, keeps findings ---------------------

TEST_F(PsanTest, SimulateCrashForgetsDirtyLines) {
  PoolOptions o;
  o.mode = PoolMode::kDram;
  o.capacity = 32ull << 20;
  o.crash_shadow = true;
  auto pool_r = Pool::Create("", o);
  ASSERT_TRUE(pool_r.ok());
  Pool* pool = pool_r->get();
  auto a = pool->AllocateZeroed(256);
  ASSERT_TRUE(a.ok());

  PsanStore(pool, pool->ToPtr<uint64_t>(*a), uint64_t{3});
  pool->SimulateCrash();  // memory image reverted; the store never happened

  // Closing now must not blame the reverted store.
  uint64_t before = PsanTotalViolations();
  pool_r->reset();
  EXPECT_EQ(PsanTotalViolations(), before);
}

// --- Runtime knob ---------------------------------------------------------

TEST_F(PsanTest, EnvKnobDisablesWithoutRebuild) {
  ::setenv("POSEIDON_PSAN", "0", 1);
  auto pool_r = MakePool();
  ::unsetenv("POSEIDON_PSAN");
  ASSERT_TRUE(pool_r.ok());
  EXPECT_EQ(pool_r->get()->psan(), nullptr);
}

}  // namespace
}  // namespace poseidon::pmem
