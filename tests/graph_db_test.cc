#include "core/graph_db.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace poseidon::core {
namespace {

using query::CmpOp;
using query::Expr;
using query::Plan;
using query::PlanBuilder;
using query::Value;
using storage::PVal;

GraphDbOptions FastOptions(const std::string& path) {
  GraphDbOptions o;
  o.path = path;
  o.capacity = 512ull << 20;
  o.has_latency_override = true;
  o.latency_override = pmem::LatencyModel::Dram();
  o.query_threads = 2;
  return o;
}

class GraphDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/graphdb_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".pmem";
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

TEST_F(GraphDbTest, EndToEndLifecycle) {
  storage::DictCode person, name;
  storage::RecordId alice;
  {
    auto db = GraphDb::Create(FastOptions(path_));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    person = *(*db)->Code("Person");
    name = *(*db)->Code("name");
    auto tx = (*db)->Begin();
    auto a = tx->CreateNode(person, {{name, PVal::Int(1)}});
    ASSERT_TRUE(a.ok());
    alice = *a;
    auto b = tx->CreateNode(person, {{name, PVal::Int(2)}});
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(
        tx->CreateRelationship(alice, *b, *(*db)->Code("knows"), {}).ok());
    ASSERT_TRUE(tx->Commit().ok());

    Plan count = PlanBuilder().NodeScan(person).Count().Build();
    auto r = (*db)->Execute(count);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->rows[0][0].AsInt(), 2);
  }
  // Clean reopen: everything durable.
  {
    auto db = GraphDb::Open(FastOptions(path_));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_FALSE((*db)->recovered_from_crash());
    auto tx = (*db)->Begin();
    auto v = tx->GetNodeProperty(alice, name);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->AsInt(), 1);
  }
}

TEST_F(GraphDbTest, VolatileModeWorksWithoutPath) {
  GraphDbOptions o;
  o.path = "";
  o.capacity = 256ull << 20;
  auto db = GraphDb::Create(o);
  ASSERT_TRUE(db.ok());
  auto tx = (*db)->Begin();
  ASSERT_TRUE(tx->CreateNode(*(*db)->Code("N"), {}).ok());
  ASSERT_TRUE(tx->Commit().ok());
  EXPECT_EQ((*db)->store()->nodes().size(), 1u);
}

TEST_F(GraphDbTest, IndexCreationAndIndexedQuery) {
  auto db = GraphDb::Create(FastOptions(path_));
  ASSERT_TRUE(db.ok());
  auto person = *(*db)->Code("Person");
  auto id_key = *(*db)->Code("id");
  {
    auto tx = (*db)->Begin();
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(tx->CreateNode(person, {{id_key, PVal::Int(i)}}).ok());
    }
    ASSERT_TRUE(tx->Commit().ok());
  }
  ASSERT_TRUE((*db)->CreateIndex("Person", "id").ok());
  Plan p = PlanBuilder()
               .IndexScan(person, id_key, Expr::Param(0))
               .Project({Expr::Property(0, id_key)})
               .Build();
  auto r = (*db)->Execute(p, jit::ExecutionMode::kInterpret, {Value::Int(42)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 42);
}

TEST_F(GraphDbTest, HybridIndexSurvivesReopen) {
  auto person_ids = std::vector<int64_t>{};
  {
    auto db = GraphDb::Create(FastOptions(path_));
    ASSERT_TRUE(db.ok());
    auto person = *(*db)->Code("Person");
    auto id_key = *(*db)->Code("id");
    auto tx = (*db)->Begin();
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(tx->CreateNode(person, {{id_key, PVal::Int(i)}}).ok());
    }
    ASSERT_TRUE(tx->Commit().ok());
    ASSERT_TRUE((*db)->CreateIndex("Person", "id").ok());
  }
  {
    auto db = GraphDb::Open(FastOptions(path_));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto person = *(*db)->Code("Person");
    auto id_key = *(*db)->Code("id");
    // The hybrid index was recovered by rebuilding its DRAM inner levels.
    Plan p = PlanBuilder()
                 .IndexScan(person, id_key, Expr::Param(0))
                 .Count()
                 .Build();
    auto r = (*db)->Execute(p, jit::ExecutionMode::kInterpret,
                            {Value::Int(123)});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows[0][0].AsInt(), 1);
  }
}

TEST_F(GraphDbTest, JitQueryCachePersistsAcrossSessions) {
  auto person_count_plan = [](storage::DictCode person) {
    return PlanBuilder().NodeScan(person).Count().Build();
  };
  storage::DictCode person;
  {
    auto db = GraphDb::Create(FastOptions(path_));
    ASSERT_TRUE(db.ok());
    person = *(*db)->Code("Person");
    auto tx = (*db)->Begin();
    ASSERT_TRUE(tx->CreateNode(person, {}).ok());
    ASSERT_TRUE(tx->Commit().ok());
    Plan p = person_count_plan(person);
    jit::ExecStats stats;
    auto r = (*db)->Execute(p, jit::ExecutionMode::kJit, {}, &stats);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(stats.cache_hit);
    EXPECT_GT((*db)->query_cache()->size(), 0u);
  }
  {
    auto db = GraphDb::Open(FastOptions(path_));
    ASSERT_TRUE(db.ok());
    Plan p = person_count_plan(person);
    jit::ExecStats stats;
    auto r = (*db)->Execute(p, jit::ExecutionMode::kJit, {}, &stats);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(stats.cache_hit)
        << "compiled code must be reused across restarts (§6.2)";
    EXPECT_EQ(r->rows[0][0].AsInt(), 1);
  }
}

TEST_F(GraphDbTest, CrashRecoveryEndToEnd) {
  storage::DictCode person, name;
  {
    auto options = FastOptions(path_);
    auto db_or = GraphDb::Create(options);
    ASSERT_TRUE(db_or.ok());
    GraphDb* db = db_or->get();
    person = *db->Code("Person");
    name = *db->Code("name");
    {
      auto tx = db->Begin();
      ASSERT_TRUE(tx->CreateNode(person, {{name, PVal::Int(1)}}).ok());
      ASSERT_TRUE(tx->Commit().ok());
    }
    {
      auto tx = db->Begin();
      ASSERT_TRUE(tx->CreateNode(person, {{name, PVal::Int(2)}}).ok());
      ASSERT_TRUE(tx->SetNodeProperty(0, name, PVal::Int(99)).ok());
      (void)tx.release();  // in-flight at crash
    }
    (void)db_or->release();  // hard crash: no clean shutdown
  }
  {
    auto db = GraphDb::Open(FastOptions(path_));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_TRUE((*db)->recovered_from_crash());
    auto tx = (*db)->Begin();
    auto v = tx->GetNodeProperty(0, name);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->AsInt(), 1) << "uncommitted update must be rolled back";
    EXPECT_EQ((*db)->store()->nodes().size(), 1u)
        << "uncommitted insert must be dropped";
  }
}

TEST_F(GraphDbTest, AdaptiveExecutionThroughFacade) {
  auto db = GraphDb::Create(FastOptions(path_));
  ASSERT_TRUE(db.ok());
  auto person = *(*db)->Code("Person");
  auto age = *(*db)->Code("age");
  {
    auto tx = (*db)->Begin();
    for (int i = 0; i < 5000; ++i) {
      ASSERT_TRUE(tx->CreateNode(person, {{age, PVal::Int(i % 90)}}).ok());
    }
    ASSERT_TRUE(tx->Commit().ok());
  }
  Plan p = PlanBuilder()
               .NodeScan(person)
               .FilterProperty(0, age, CmpOp::kLt,
                               Expr::Literal(Value::Int(30)))
               .Count()
               .Build();
  auto aot = (*db)->Execute(p, jit::ExecutionMode::kInterpret);
  auto adaptive = (*db)->Execute(p, jit::ExecutionMode::kAdaptive);
  ASSERT_TRUE(aot.ok() && adaptive.ok());
  EXPECT_EQ(aot->rows[0][0].AsInt(), adaptive->rows[0][0].AsInt());
  (*db)->engine()->WaitForBackgroundCompiles();
}

TEST_F(GraphDbTest, BatchedScanAblationIdenticalAcrossModes) {
  // Every execution mode must return the same rows with the batched scan
  // kernels on (default) and off (scalar fallback). Batch-off also compiles
  // a distinct query variant (ScanOptions feed the JIT cache key).
  auto db = GraphDb::Create(FastOptions(path_));
  ASSERT_TRUE(db.ok());
  auto person = *(*db)->Code("Person");
  auto age = *(*db)->Code("age");
  {
    auto tx = (*db)->Begin();
    for (int i = 0; i < 3000; ++i) {
      ASSERT_TRUE(tx->CreateNode(person, {{age, PVal::Int(i % 97)}}).ok());
    }
    ASSERT_TRUE(tx->Commit().ok());
    // Holes so occupancy words are partially filled.
    auto del = (*db)->Begin();
    for (storage::RecordId id = 0; id < 3000; id += 3) {
      ASSERT_TRUE(del->DeleteNode(id).ok());
    }
    ASSERT_TRUE(del->Commit().ok());
  }
  Plan p = PlanBuilder()
               .NodeScan(person)
               .FilterProperty(0, age, CmpOp::kLt,
                               Expr::Literal(Value::Int(40)))
               .Count()
               .Build();

  storage::ScanOptions batch_on = (*db)->scan_options();
  batch_on.batch_enabled = true;
  storage::ScanOptions batch_off;
  batch_off.batch_enabled = false;
  batch_off.prefetch_distance = 0;

  const jit::ExecutionMode modes[] = {
      jit::ExecutionMode::kInterpret, jit::ExecutionMode::kInterpretParallel,
      jit::ExecutionMode::kJit, jit::ExecutionMode::kAdaptive};
  int64_t expected = -1;
  for (const auto& opts : {batch_on, batch_off}) {
    (*db)->set_scan_options(opts);
    for (jit::ExecutionMode mode : modes) {
      auto r = (*db)->Execute(p, mode);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      int64_t count = r->rows[0][0].AsInt();
      if (expected < 0) expected = count;
      EXPECT_EQ(count, expected)
          << "mode=" << static_cast<int>(mode)
          << " batch=" << (opts.batch_enabled ? "on" : "off");
    }
  }
  (*db)->engine()->WaitForBackgroundCompiles();
  (*db)->set_scan_options(batch_on);
}

TEST_F(GraphDbTest, AdjacencyCacheAblationIdenticalAcrossModes) {
  // Expand must return the same rows with the DRAM adjacency cache on
  // (default) and off (raw chain walk) in every execution mode. Cache
  // enablement feeds the JIT cache key, so the off run compiles a distinct
  // chain-walk-only variant rather than reusing the dual-loop code.
  auto db = GraphDb::Create(FastOptions(path_));
  ASSERT_TRUE(db.ok());
  auto person = *(*db)->Code("Person");
  auto knows = *(*db)->Code("knows");
  constexpr int kPersons = 400;
  {
    auto tx = (*db)->Begin();
    std::vector<storage::RecordId> ids;
    for (int i = 0; i < kPersons; ++i) {
      ids.push_back(*tx->CreateNode(person, {}));
    }
    for (int i = 0; i < kPersons; ++i) {
      ASSERT_TRUE(tx->CreateRelationship(ids[i], ids[(i + 1) % kPersons],
                                         knows, {})
                      .ok());
      if (i % 3 == 0) {
        ASSERT_TRUE(tx->CreateRelationship(ids[i], ids[(i + 7) % kPersons],
                                           knows, {})
                        .ok());
      }
    }
    ASSERT_TRUE(tx->Commit().ok());
  }
  Plan p = PlanBuilder()
               .NodeScan(person)
               .Expand(0, query::Direction::kOut, knows)
               .Count()
               .Build();

  const jit::ExecutionMode modes[] = {
      jit::ExecutionMode::kInterpret, jit::ExecutionMode::kInterpretParallel,
      jit::ExecutionMode::kJit, jit::ExecutionMode::kAdaptive};
  int64_t expected = -1;
  for (bool cache_on : {true, false}) {
    (*db)->set_adj_cache_enabled(cache_on);
    for (jit::ExecutionMode mode : modes) {
      auto r = (*db)->Execute(p, mode);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      int64_t count = r->rows[0][0].AsInt();
      if (expected < 0) expected = count;
      EXPECT_EQ(count, expected) << "mode=" << static_cast<int>(mode)
                                 << " adj_cache=" << (cache_on ? "on" : "off");
    }
  }
  (*db)->engine()->WaitForBackgroundCompiles();
  (*db)->set_adj_cache_enabled(true);

  // Compiled execution reports cache traffic: the first hot run rebuilds the
  // arrays (cleared by the toggle above), the second is all hits.
  {
    auto tx = (*db)->Begin();
    jit::ExecStats stats;
    auto r = (*db)->ExecuteIn(p, tx.get(), {}, jit::ExecutionMode::kJit,
                              &stats);
    ASSERT_TRUE(r.ok());
    EXPECT_GT(stats.adj_cache_misses, 0u);
    jit::ExecStats hot;
    r = (*db)->ExecuteIn(p, tx.get(), {}, jit::ExecutionMode::kJit, &hot);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->rows[0][0].AsInt(), expected);
    EXPECT_GT(hot.adj_cache_hits, 0u);
    EXPECT_EQ(hot.adj_cache_misses, 0u);
    ASSERT_TRUE(tx->Commit().ok());
  }

  // EXPLAIN renders the cache state and counters on Expand operators.
  EXPECT_NE((*db)->Explain(p).find("adjcache=on"), std::string::npos);
  (*db)->set_adj_cache_enabled(false);
  EXPECT_NE((*db)->Explain(p).find("adjcache=off"), std::string::npos);
  (*db)->set_adj_cache_enabled(true);
}

}  // namespace
}  // namespace poseidon::core
