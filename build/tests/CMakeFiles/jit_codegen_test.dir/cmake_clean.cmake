file(REMOVE_RECURSE
  "CMakeFiles/jit_codegen_test.dir/jit_codegen_test.cc.o"
  "CMakeFiles/jit_codegen_test.dir/jit_codegen_test.cc.o.d"
  "jit_codegen_test"
  "jit_codegen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jit_codegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
