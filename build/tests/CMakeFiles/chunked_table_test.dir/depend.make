# Empty dependencies file for chunked_table_test.
# This may be replaced when dependencies are built.
