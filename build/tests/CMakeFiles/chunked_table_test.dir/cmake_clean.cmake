file(REMOVE_RECURSE
  "CMakeFiles/chunked_table_test.dir/chunked_table_test.cc.o"
  "CMakeFiles/chunked_table_test.dir/chunked_table_test.cc.o.d"
  "chunked_table_test"
  "chunked_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chunked_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
