file(REMOVE_RECURSE
  "CMakeFiles/property_store_test.dir/property_store_test.cc.o"
  "CMakeFiles/property_store_test.dir/property_store_test.cc.o.d"
  "property_store_test"
  "property_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
