file(REMOVE_RECURSE
  "CMakeFiles/tx_edge_test.dir/tx_edge_test.cc.o"
  "CMakeFiles/tx_edge_test.dir/tx_edge_test.cc.o.d"
  "tx_edge_test"
  "tx_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tx_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
