# Empty compiler generated dependencies file for value_plan_test.
# This may be replaced when dependencies are built.
