file(REMOVE_RECURSE
  "CMakeFiles/value_plan_test.dir/value_plan_test.cc.o"
  "CMakeFiles/value_plan_test.dir/value_plan_test.cc.o.d"
  "value_plan_test"
  "value_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
