file(REMOVE_RECURSE
  "CMakeFiles/cypher_test.dir/cypher_test.cc.o"
  "CMakeFiles/cypher_test.dir/cypher_test.cc.o.d"
  "cypher_test"
  "cypher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cypher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
