file(REMOVE_RECURSE
  "CMakeFiles/graph_db_test.dir/graph_db_test.cc.o"
  "CMakeFiles/graph_db_test.dir/graph_db_test.cc.o.d"
  "graph_db_test"
  "graph_db_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
