# Empty dependencies file for graph_db_test.
# This may be replaced when dependencies are built.
