file(REMOVE_RECURSE
  "CMakeFiles/pmem_pool_test.dir/pmem_pool_test.cc.o"
  "CMakeFiles/pmem_pool_test.dir/pmem_pool_test.cc.o.d"
  "pmem_pool_test"
  "pmem_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmem_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
