# Empty compiler generated dependencies file for diskgraph_test.
# This may be replaced when dependencies are built.
