file(REMOVE_RECURSE
  "CMakeFiles/diskgraph_test.dir/diskgraph_test.cc.o"
  "CMakeFiles/diskgraph_test.dir/diskgraph_test.cc.o.d"
  "diskgraph_test"
  "diskgraph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diskgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
