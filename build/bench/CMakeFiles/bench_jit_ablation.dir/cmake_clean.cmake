file(REMOVE_RECURSE
  "CMakeFiles/bench_jit_ablation.dir/bench_jit_ablation.cc.o"
  "CMakeFiles/bench_jit_ablation.dir/bench_jit_ablation.cc.o.d"
  "bench_jit_ablation"
  "bench_jit_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jit_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
