# Empty compiler generated dependencies file for bench_jit_ablation.
# This may be replaced when dependencies are built.
