# Empty dependencies file for bench_hybrid_dictionary.
# This may be replaced when dependencies are built.
