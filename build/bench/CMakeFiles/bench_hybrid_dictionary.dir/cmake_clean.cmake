file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid_dictionary.dir/bench_hybrid_dictionary.cc.o"
  "CMakeFiles/bench_hybrid_dictionary.dir/bench_hybrid_dictionary.cc.o.d"
  "bench_hybrid_dictionary"
  "bench_hybrid_dictionary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid_dictionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
