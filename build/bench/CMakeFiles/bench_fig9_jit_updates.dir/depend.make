# Empty dependencies file for bench_fig9_jit_updates.
# This may be replaced when dependencies are built.
