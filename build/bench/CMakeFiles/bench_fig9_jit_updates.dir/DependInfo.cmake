
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_jit_updates.cc" "bench/CMakeFiles/bench_fig9_jit_updates.dir/bench_fig9_jit_updates.cc.o" "gcc" "bench/CMakeFiles/bench_fig9_jit_updates.dir/bench_fig9_jit_updates.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/poseidon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ldbc/CMakeFiles/poseidon_ldbc.dir/DependInfo.cmake"
  "/root/repo/build/src/diskgraph/CMakeFiles/poseidon_diskgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/jit/CMakeFiles/poseidon_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/poseidon_query.dir/DependInfo.cmake"
  "/root/repo/build/src/tx/CMakeFiles/poseidon_tx.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/poseidon_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/poseidon_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/poseidon_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/poseidon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
