file(REMOVE_RECURSE
  "CMakeFiles/bench_analytics.dir/bench_analytics.cc.o"
  "CMakeFiles/bench_analytics.dir/bench_analytics.cc.o.d"
  "bench_analytics"
  "bench_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
