file(REMOVE_RECURSE
  "CMakeFiles/bench_pmem_micro.dir/bench_pmem_micro.cc.o"
  "CMakeFiles/bench_pmem_micro.dir/bench_pmem_micro.cc.o.d"
  "bench_pmem_micro"
  "bench_pmem_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pmem_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
