
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_pmem_micro.cc" "bench/CMakeFiles/bench_pmem_micro.dir/bench_pmem_micro.cc.o" "gcc" "bench/CMakeFiles/bench_pmem_micro.dir/bench_pmem_micro.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/poseidon_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/poseidon_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/poseidon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
