# Empty compiler generated dependencies file for bench_pmem_micro.
# This may be replaced when dependencies are built.
