file(REMOVE_RECURSE
  "CMakeFiles/bench_mvto_ablation.dir/bench_mvto_ablation.cc.o"
  "CMakeFiles/bench_mvto_ablation.dir/bench_mvto_ablation.cc.o.d"
  "bench_mvto_ablation"
  "bench_mvto_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mvto_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
