# Empty dependencies file for bench_mvto_ablation.
# This may be replaced when dependencies are built.
