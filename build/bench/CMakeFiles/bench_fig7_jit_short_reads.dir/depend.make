# Empty dependencies file for bench_fig7_jit_short_reads.
# This may be replaced when dependencies are built.
