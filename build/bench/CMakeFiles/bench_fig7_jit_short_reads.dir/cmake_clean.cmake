file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_jit_short_reads.dir/bench_fig7_jit_short_reads.cc.o"
  "CMakeFiles/bench_fig7_jit_short_reads.dir/bench_fig7_jit_short_reads.cc.o.d"
  "bench_fig7_jit_short_reads"
  "bench_fig7_jit_short_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_jit_short_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
