file(REMOVE_RECURSE
  "CMakeFiles/fraud_ring.dir/fraud_ring.cpp.o"
  "CMakeFiles/fraud_ring.dir/fraud_ring.cpp.o.d"
  "fraud_ring"
  "fraud_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fraud_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
