file(REMOVE_RECURSE
  "CMakeFiles/cypher_shell.dir/cypher_shell.cpp.o"
  "CMakeFiles/cypher_shell.dir/cypher_shell.cpp.o.d"
  "cypher_shell"
  "cypher_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cypher_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
