file(REMOVE_RECURSE
  "CMakeFiles/poseidon_core.dir/graph_db.cc.o"
  "CMakeFiles/poseidon_core.dir/graph_db.cc.o.d"
  "libposeidon_core.a"
  "libposeidon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poseidon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
