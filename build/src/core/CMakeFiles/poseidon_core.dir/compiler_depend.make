# Empty compiler generated dependencies file for poseidon_core.
# This may be replaced when dependencies are built.
