file(REMOVE_RECURSE
  "libposeidon_core.a"
)
