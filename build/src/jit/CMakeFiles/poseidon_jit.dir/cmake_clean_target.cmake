file(REMOVE_RECURSE
  "libposeidon_jit.a"
)
