file(REMOVE_RECURSE
  "CMakeFiles/poseidon_jit.dir/codegen.cc.o"
  "CMakeFiles/poseidon_jit.dir/codegen.cc.o.d"
  "CMakeFiles/poseidon_jit.dir/jit_engine.cc.o"
  "CMakeFiles/poseidon_jit.dir/jit_engine.cc.o.d"
  "CMakeFiles/poseidon_jit.dir/jit_query_engine.cc.o"
  "CMakeFiles/poseidon_jit.dir/jit_query_engine.cc.o.d"
  "CMakeFiles/poseidon_jit.dir/query_cache.cc.o"
  "CMakeFiles/poseidon_jit.dir/query_cache.cc.o.d"
  "CMakeFiles/poseidon_jit.dir/runtime.cc.o"
  "CMakeFiles/poseidon_jit.dir/runtime.cc.o.d"
  "libposeidon_jit.a"
  "libposeidon_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poseidon_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
