# Empty dependencies file for poseidon_jit.
# This may be replaced when dependencies are built.
