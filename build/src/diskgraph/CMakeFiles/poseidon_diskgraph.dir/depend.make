# Empty dependencies file for poseidon_diskgraph.
# This may be replaced when dependencies are built.
