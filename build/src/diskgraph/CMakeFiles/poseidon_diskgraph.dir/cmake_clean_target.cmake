file(REMOVE_RECURSE
  "libposeidon_diskgraph.a"
)
