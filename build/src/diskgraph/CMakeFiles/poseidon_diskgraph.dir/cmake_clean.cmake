file(REMOVE_RECURSE
  "CMakeFiles/poseidon_diskgraph.dir/disk_graph.cc.o"
  "CMakeFiles/poseidon_diskgraph.dir/disk_graph.cc.o.d"
  "CMakeFiles/poseidon_diskgraph.dir/page_store.cc.o"
  "CMakeFiles/poseidon_diskgraph.dir/page_store.cc.o.d"
  "CMakeFiles/poseidon_diskgraph.dir/snb_disk.cc.o"
  "CMakeFiles/poseidon_diskgraph.dir/snb_disk.cc.o.d"
  "libposeidon_diskgraph.a"
  "libposeidon_diskgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poseidon_diskgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
