file(REMOVE_RECURSE
  "CMakeFiles/poseidon_storage.dir/dictionary.cc.o"
  "CMakeFiles/poseidon_storage.dir/dictionary.cc.o.d"
  "CMakeFiles/poseidon_storage.dir/graph_store.cc.o"
  "CMakeFiles/poseidon_storage.dir/graph_store.cc.o.d"
  "CMakeFiles/poseidon_storage.dir/property_store.cc.o"
  "CMakeFiles/poseidon_storage.dir/property_store.cc.o.d"
  "libposeidon_storage.a"
  "libposeidon_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poseidon_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
