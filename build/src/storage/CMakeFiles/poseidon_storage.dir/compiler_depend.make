# Empty compiler generated dependencies file for poseidon_storage.
# This may be replaced when dependencies are built.
