
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/dictionary.cc" "src/storage/CMakeFiles/poseidon_storage.dir/dictionary.cc.o" "gcc" "src/storage/CMakeFiles/poseidon_storage.dir/dictionary.cc.o.d"
  "/root/repo/src/storage/graph_store.cc" "src/storage/CMakeFiles/poseidon_storage.dir/graph_store.cc.o" "gcc" "src/storage/CMakeFiles/poseidon_storage.dir/graph_store.cc.o.d"
  "/root/repo/src/storage/property_store.cc" "src/storage/CMakeFiles/poseidon_storage.dir/property_store.cc.o" "gcc" "src/storage/CMakeFiles/poseidon_storage.dir/property_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pmem/CMakeFiles/poseidon_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/poseidon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
