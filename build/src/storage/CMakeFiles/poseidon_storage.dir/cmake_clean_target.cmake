file(REMOVE_RECURSE
  "libposeidon_storage.a"
)
