file(REMOVE_RECURSE
  "libposeidon_index.a"
)
