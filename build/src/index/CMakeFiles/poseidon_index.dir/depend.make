# Empty dependencies file for poseidon_index.
# This may be replaced when dependencies are built.
