file(REMOVE_RECURSE
  "CMakeFiles/poseidon_index.dir/bptree.cc.o"
  "CMakeFiles/poseidon_index.dir/bptree.cc.o.d"
  "CMakeFiles/poseidon_index.dir/index_manager.cc.o"
  "CMakeFiles/poseidon_index.dir/index_manager.cc.o.d"
  "libposeidon_index.a"
  "libposeidon_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poseidon_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
