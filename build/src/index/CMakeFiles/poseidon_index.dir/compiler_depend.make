# Empty compiler generated dependencies file for poseidon_index.
# This may be replaced when dependencies are built.
