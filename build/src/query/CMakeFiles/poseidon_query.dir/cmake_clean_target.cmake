file(REMOVE_RECURSE
  "libposeidon_query.a"
)
