file(REMOVE_RECURSE
  "CMakeFiles/poseidon_query.dir/cypher.cc.o"
  "CMakeFiles/poseidon_query.dir/cypher.cc.o.d"
  "CMakeFiles/poseidon_query.dir/engine.cc.o"
  "CMakeFiles/poseidon_query.dir/engine.cc.o.d"
  "CMakeFiles/poseidon_query.dir/interpreter.cc.o"
  "CMakeFiles/poseidon_query.dir/interpreter.cc.o.d"
  "CMakeFiles/poseidon_query.dir/plan.cc.o"
  "CMakeFiles/poseidon_query.dir/plan.cc.o.d"
  "libposeidon_query.a"
  "libposeidon_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poseidon_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
