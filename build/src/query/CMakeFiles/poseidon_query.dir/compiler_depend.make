# Empty compiler generated dependencies file for poseidon_query.
# This may be replaced when dependencies are built.
