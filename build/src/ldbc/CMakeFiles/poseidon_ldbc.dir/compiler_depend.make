# Empty compiler generated dependencies file for poseidon_ldbc.
# This may be replaced when dependencies are built.
