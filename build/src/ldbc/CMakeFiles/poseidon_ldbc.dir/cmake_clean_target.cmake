file(REMOVE_RECURSE
  "libposeidon_ldbc.a"
)
