file(REMOVE_RECURSE
  "CMakeFiles/poseidon_ldbc.dir/queries.cc.o"
  "CMakeFiles/poseidon_ldbc.dir/queries.cc.o.d"
  "CMakeFiles/poseidon_ldbc.dir/schema.cc.o"
  "CMakeFiles/poseidon_ldbc.dir/schema.cc.o.d"
  "CMakeFiles/poseidon_ldbc.dir/snb_gen.cc.o"
  "CMakeFiles/poseidon_ldbc.dir/snb_gen.cc.o.d"
  "libposeidon_ldbc.a"
  "libposeidon_ldbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poseidon_ldbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
