# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("pmem")
subdirs("storage")
subdirs("index")
subdirs("tx")
subdirs("query")
subdirs("jit")
subdirs("ldbc")
subdirs("diskgraph")
subdirs("analytics")
subdirs("core")
