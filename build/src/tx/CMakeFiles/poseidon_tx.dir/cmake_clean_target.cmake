file(REMOVE_RECURSE
  "libposeidon_tx.a"
)
