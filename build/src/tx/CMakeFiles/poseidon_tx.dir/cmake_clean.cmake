file(REMOVE_RECURSE
  "CMakeFiles/poseidon_tx.dir/transaction.cc.o"
  "CMakeFiles/poseidon_tx.dir/transaction.cc.o.d"
  "libposeidon_tx.a"
  "libposeidon_tx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poseidon_tx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
