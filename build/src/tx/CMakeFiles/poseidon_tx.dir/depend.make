# Empty dependencies file for poseidon_tx.
# This may be replaced when dependencies are built.
