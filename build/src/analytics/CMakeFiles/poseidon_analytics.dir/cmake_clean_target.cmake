file(REMOVE_RECURSE
  "libposeidon_analytics.a"
)
