# Empty compiler generated dependencies file for poseidon_analytics.
# This may be replaced when dependencies are built.
