file(REMOVE_RECURSE
  "CMakeFiles/poseidon_analytics.dir/algorithms.cc.o"
  "CMakeFiles/poseidon_analytics.dir/algorithms.cc.o.d"
  "CMakeFiles/poseidon_analytics.dir/snapshot.cc.o"
  "CMakeFiles/poseidon_analytics.dir/snapshot.cc.o.d"
  "libposeidon_analytics.a"
  "libposeidon_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poseidon_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
