file(REMOVE_RECURSE
  "libposeidon_pmem.a"
)
