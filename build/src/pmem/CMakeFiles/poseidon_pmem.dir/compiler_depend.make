# Empty compiler generated dependencies file for poseidon_pmem.
# This may be replaced when dependencies are built.
