file(REMOVE_RECURSE
  "CMakeFiles/poseidon_pmem.dir/latency_model.cc.o"
  "CMakeFiles/poseidon_pmem.dir/latency_model.cc.o.d"
  "CMakeFiles/poseidon_pmem.dir/pool.cc.o"
  "CMakeFiles/poseidon_pmem.dir/pool.cc.o.d"
  "libposeidon_pmem.a"
  "libposeidon_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poseidon_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
