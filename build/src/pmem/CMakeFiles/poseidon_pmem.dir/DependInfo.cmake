
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmem/latency_model.cc" "src/pmem/CMakeFiles/poseidon_pmem.dir/latency_model.cc.o" "gcc" "src/pmem/CMakeFiles/poseidon_pmem.dir/latency_model.cc.o.d"
  "/root/repo/src/pmem/pool.cc" "src/pmem/CMakeFiles/poseidon_pmem.dir/pool.cc.o" "gcc" "src/pmem/CMakeFiles/poseidon_pmem.dir/pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/poseidon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
