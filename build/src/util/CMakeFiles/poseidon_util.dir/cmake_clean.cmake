file(REMOVE_RECURSE
  "CMakeFiles/poseidon_util.dir/status.cc.o"
  "CMakeFiles/poseidon_util.dir/status.cc.o.d"
  "CMakeFiles/poseidon_util.dir/thread_pool.cc.o"
  "CMakeFiles/poseidon_util.dir/thread_pool.cc.o.d"
  "libposeidon_util.a"
  "libposeidon_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poseidon_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
