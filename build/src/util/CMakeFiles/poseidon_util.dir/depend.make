# Empty dependencies file for poseidon_util.
# This may be replaced when dependencies are built.
