file(REMOVE_RECURSE
  "libposeidon_util.a"
)
